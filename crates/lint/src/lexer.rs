//! A minimal string-, comment- and attribute-aware Rust scanner.
//!
//! The container is registry-less, so `goalrec-lint` cannot pull in a real
//! Rust parser; this hand-rolled lexer covers exactly what the rules need:
//!
//! * comments are skipped (and mined for `goalrec-lint:allow` directives);
//! * string/char/lifetime literals are tokenized, never confused with
//!   code (including raw/byte strings and nested block comments);
//! * `#[cfg(test)]` / `#[test]` / `#[bench]` items are resolved to line
//!   ranges so rules can exempt test code.
//!
//! Everything that is not an identifier or a string literal comes out as a
//! single-character punctuation token; numbers are consumed and dropped.

/// One meaningful token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// String literal content (escapes kept verbatim, delimiters stripped).
    Str(String),
    /// Any other non-whitespace character.
    Punct(char),
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based source line of the token's first character.
    pub line: u32,
}

/// An inline `goalrec-lint:allow` comment directive: the rules it names in
/// parentheses, then a `: justification` tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Line the comment sits on; it suppresses findings on this line and
    /// the next one.
    pub line: u32,
    /// Rule identifiers listed inside the parentheses.
    pub rules: Vec<String>,
    /// Free-text justification after the closing parenthesis (mandatory —
    /// the engine reports empty justifications as findings).
    pub justification: String,
}

/// A comment's text and the lines it spans (equal for line comments).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on.
    pub end_line: u32,
    /// Comment text, delimiters included.
    pub text: String,
}

impl Comment {
    /// Whether this comment can annotate code on `line`: it sits on the
    /// same line (trailing) or ends on the line directly above.
    pub fn annotates(&self, line: u32) -> bool {
        self.line <= line && line <= self.end_line + 1
    }
}

/// The full scan result for one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Token stream, comments and whitespace removed.
    pub tokens: Vec<Token>,
    /// All suppression directives found in comments.
    pub suppressions: Vec<Suppression>,
    /// Inclusive line ranges covered by test-only items.
    pub test_ranges: Vec<(u32, u32)>,
    /// Every comment, in source order (mined for justification tags).
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Whether a line falls inside a `#[cfg(test)]`/`#[test]` item.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// Whether a comment containing `tag` annotates `line` (trailing on
    /// the same line or ending on the line above).
    pub fn has_comment_tag(&self, line: u32, tag: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.annotates(line) && c.text.contains(tag))
    }
}

const SUPPRESSION_DIRECTIVE: &str = "goalrec-lint:allow(";

/// Scans one Rust source file.
pub fn lex(src: &str) -> Lexed {
    let cs: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut suppressions = Vec::new();
    let mut comments: Vec<Comment> = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < cs.len() {
        let c = cs[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && cs.get(i + 1) == Some(&'/') {
            let start = i;
            while i < cs.len() && cs[i] != '\n' {
                i += 1;
            }
            let text: String = cs[start..i].iter().collect();
            if let Some(s) = parse_suppression(&text, line) {
                suppressions.push(s);
            }
            // A run of `//` lines with no code between them is one logical
            // comment block: merge so a tag anywhere in the block annotates
            // the line after its last line. Any code on or after the block's
            // first line (a trailing comment, or code before this one) breaks
            // the run and starts a fresh block instead.
            let last_tok_line = tokens.last().map(|t: &Token| t.line);
            match comments.last_mut() {
                Some(prev)
                    if prev.text.starts_with("//")
                        && prev.end_line + 1 == line
                        && last_tok_line.is_none_or(|l| l < prev.line) =>
                {
                    prev.end_line = line;
                    prev.text.push('\n');
                    prev.text.push_str(&text);
                }
                _ => comments.push(Comment {
                    line,
                    end_line: line,
                    text,
                }),
            }
        } else if c == '/' && cs.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < cs.len() && depth > 0 {
                if cs[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if cs[i] == '/' && cs.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if cs[i] == '*' && cs.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            comments.push(Comment {
                line: start_line,
                end_line: line,
                text: cs[start..i].iter().collect(),
            });
        } else if c == '"' {
            let (tok, ni, nl) = lex_plain_string(&cs, i, line);
            tokens.push(tok);
            i = ni;
            line = nl;
        } else if (c == 'r' || c == 'b') && starts_raw_or_byte_string(&cs, i) {
            let (tok, ni, nl) = lex_prefixed_string(&cs, i, line);
            if let Some(t) = tok {
                tokens.push(t);
            }
            i = ni;
            line = nl;
        } else if c == '_' || c.is_alphabetic() {
            let start = i;
            while i < cs.len() && (cs[i] == '_' || cs[i].is_alphanumeric()) {
                i += 1;
            }
            tokens.push(Token {
                tok: Tok::Ident(cs[start..i].iter().collect()),
                line,
            });
        } else if c.is_ascii_digit() {
            // Numbers carry no signal for any rule; consume and drop.
            while i < cs.len() && (cs[i] == '_' || cs[i].is_alphanumeric()) {
                i += 1;
            }
        } else if c == '\'' {
            i = skip_char_or_lifetime(&cs, i);
        } else {
            tokens.push(Token {
                tok: Tok::Punct(c),
                line,
            });
            i += 1;
        }
    }

    let test_ranges = compute_test_ranges(&tokens);
    Lexed {
        tokens,
        suppressions,
        test_ranges,
        comments,
    }
}

fn parse_suppression(comment: &str, line: u32) -> Option<Suppression> {
    let pos = comment.find(SUPPRESSION_DIRECTIVE)?;
    let after = &comment[pos + SUPPRESSION_DIRECTIVE.len()..];
    let close = after.find(')')?;
    let rules: Vec<String> = after[..close]
        .split(',')
        .map(|r| r.trim().to_owned())
        .filter(|r| !r.is_empty())
        .collect();
    let justification = after[close + 1..]
        .trim_start()
        .trim_start_matches(':')
        .trim()
        .to_owned();
    Some(Suppression {
        line,
        rules,
        justification,
    })
}

fn lex_plain_string(cs: &[char], mut i: usize, mut line: u32) -> (Token, usize, u32) {
    let start_line = line;
    let mut s = String::new();
    i += 1; // opening quote
    while i < cs.len() {
        match cs[i] {
            '\\' => {
                s.push('\\');
                if let Some(&next) = cs.get(i + 1) {
                    if next == '\n' {
                        line += 1;
                    }
                    s.push(next);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            '"' => {
                i += 1;
                break;
            }
            c => {
                if c == '\n' {
                    line += 1;
                }
                s.push(c);
                i += 1;
            }
        }
    }
    (
        Token {
            tok: Tok::Str(s),
            line: start_line,
        },
        i,
        line,
    )
}

fn starts_raw_or_byte_string(cs: &[char], i: usize) -> bool {
    let rest: String = cs[i..cs.len().min(i + 4)].iter().collect();
    rest.starts_with("r\"")
        || rest.starts_with("r#")
        || rest.starts_with("b\"")
        || rest.starts_with("b'")
        || rest.starts_with("br\"")
        || rest.starts_with("br#")
}

/// Lexes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` and `b'…'` forms, plus raw
/// identifiers (`r#type`), which keep their `r#` prefix in the token so
/// they can never collide with the bare keyword.
fn lex_prefixed_string(cs: &[char], mut i: usize, mut line: u32) -> (Option<Token>, usize, u32) {
    let start_line = line;
    // Skip the r/b/br prefix.
    let prefix_start = i;
    while i < cs.len() && (cs[i] == 'r' || cs[i] == 'b') {
        i += 1;
    }
    let prefix_len = i - prefix_start;
    let prefix_is_r = prefix_len == 1 && cs[prefix_start] == 'r';
    if cs.get(i) == Some(&'\'') {
        // Byte char literal b'x'.
        return (None, skip_char_or_lifetime(cs, i), line);
    }
    let mut hashes = 0usize;
    while cs.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    if cs.get(i) != Some(&'"') {
        // Not a string after all: a raw identifier like `r#type`. Emit it
        // with the `r#` prefix intact — `r#fn` is a name, not the `fn`
        // keyword, and the call-graph pass relies on the distinction.
        let start = i;
        while i < cs.len() && (cs[i] == '_' || cs[i].is_alphanumeric()) {
            i += 1;
        }
        let name: String = cs[start..i].iter().collect();
        let tok = if name.is_empty() {
            None
        } else if prefix_is_r && hashes == 1 {
            Some(Token {
                tok: Tok::Ident(format!("r#{name}")),
                line,
            })
        } else {
            Some(Token {
                tok: Tok::Ident(name),
                line,
            })
        };
        return (tok, i, line);
    }
    i += 1; // opening quote
    let mut s = String::new();
    while i < cs.len() {
        if cs[i] == '"' {
            let mut matched = true;
            for h in 0..hashes {
                if cs.get(i + 1 + h) != Some(&'#') {
                    matched = false;
                    break;
                }
            }
            if matched {
                i += 1 + hashes;
                break;
            }
        }
        if cs[i] == '\n' {
            line += 1;
        }
        s.push(cs[i]);
        i += 1;
    }
    (
        Some(Token {
            tok: Tok::Str(s),
            line: start_line,
        }),
        i,
        line,
    )
}

fn skip_char_or_lifetime(cs: &[char], mut i: usize) -> usize {
    if cs.get(i + 1) == Some(&'\\') {
        // Escaped char literal: skip to the closing quote.
        i += 2;
        while i < cs.len() && cs[i] != '\'' {
            i += 1;
        }
        i + 1
    } else if cs.get(i + 2) == Some(&'\'') && cs.get(i + 1) != Some(&'\'') {
        // Plain char literal 'x'.
        i + 3
    } else {
        // Lifetime: consume the tick and the identifier after it.
        i += 1;
        while i < cs.len() && (cs[i] == '_' || cs[i].is_alphanumeric()) {
            i += 1;
        }
        i
    }
}

fn is_punct(t: Option<&Token>, c: char) -> bool {
    matches!(t, Some(Token { tok: Tok::Punct(p), .. }) if *p == c)
}

/// Resolves `#[cfg(test)]` / `#[test]` / `#[bench]` attributes to the line
/// ranges of the items they gate.
fn compute_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(is_punct(tokens.get(i), '#') && is_punct(tokens.get(i + 1), '[')) {
            i += 1;
            continue;
        }
        let attr_line = tokens[i].line;
        // Collect the attribute's identifiers up to the matching ']'.
        let mut j = i + 2;
        let mut depth = 1usize;
        let mut idents: Vec<&str> = Vec::new();
        while j < tokens.len() && depth > 0 {
            match &tokens[j].tok {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => depth -= 1,
                Tok::Ident(s) => idents.push(s),
                _ => {}
            }
            j += 1;
        }
        let is_test = idents == ["test"]
            || idents == ["bench"]
            || (idents.first() == Some(&"cfg")
                && idents.contains(&"test")
                && !idents.contains(&"not"));
        if !is_test {
            i = j;
            continue;
        }
        // The gated item runs to its block's closing brace (or to the
        // semicolon for brace-less items like gated `use` statements).
        let mut k = j;
        while k < tokens.len() && !is_punct(tokens.get(k), '{') && !is_punct(tokens.get(k), ';') {
            k += 1;
        }
        if is_punct(tokens.get(k), '{') {
            let mut depth = 1usize;
            let mut m = k + 1;
            while m < tokens.len() && depth > 0 {
                match tokens[m].tok {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => depth -= 1,
                    _ => {}
                }
                m += 1;
            }
            let end_line = tokens
                .get(m.saturating_sub(1))
                .map_or(attr_line, |t| t.line);
            ranges.push((attr_line, end_line));
            i = m;
        } else {
            let end_line = tokens.get(k).map_or(attr_line, |t| t.line);
            ranges.push((attr_line, end_line));
            i = k + 1;
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(lexed: &Lexed) -> Vec<String> {
        lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let lexed = lex(concat!(
            "// x.unwrap() in a line comment\n",
            "/* x.unwrap() /* nested */ still comment */\n",
            "let s = \"x.unwrap() in a string\";\n",
            "let r = r#\"raw \"quoted\" unwrap()\"#;\n",
        ));
        assert_eq!(idents(&lexed), vec!["let", "s", "let", "r"]);
        let strs: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(
            strs,
            vec!["x.unwrap() in a string", "raw \"quoted\" unwrap()"]
        );
    }

    #[test]
    fn lifetimes_and_char_literals_do_not_derail() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { let c = '\"'; let d = '\\''; c }");
        assert!(idents(&lexed).contains(&"str".to_owned()));
        // No string token was falsely opened by the quote chars.
        assert!(lexed.tokens.iter().all(|t| !matches!(t.tok, Tok::Str(_))));
    }

    #[test]
    fn line_numbers_are_accurate() {
        let lexed = lex("a\n\nb \"s\"\nc");
        let got: Vec<(String, u32)> = lexed
            .tokens
            .iter()
            .map(|t| {
                let text = match &t.tok {
                    Tok::Ident(s) | Tok::Str(s) => s.clone(),
                    Tok::Punct(p) => p.to_string(),
                };
                (text, t.line)
            })
            .collect();
        assert_eq!(
            got,
            vec![
                ("a".into(), 1),
                ("b".into(), 3),
                ("s".into(), 3),
                ("c".into(), 4)
            ]
        );
    }

    #[test]
    fn test_module_ranges_cover_the_block() {
        let src = "\
fn live() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}
fn live2() {}
";
        let lexed = lex(src);
        assert_eq!(lexed.test_ranges, vec![(2, 6)]);
        assert!(!lexed.is_test_line(1));
        assert!(lexed.is_test_line(5));
        assert!(!lexed.is_test_line(7));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_range() {
        let lexed = lex("#[cfg(not(test))]\nfn live() { x.unwrap(); }\n");
        assert!(lexed.test_ranges.is_empty());
    }

    #[test]
    fn test_fn_with_extra_attributes() {
        let src = "\
#[test]
#[should_panic]
fn t() {
    boom();
}
";
        let lexed = lex(src);
        assert_eq!(lexed.test_ranges, vec![(1, 5)]);
    }

    #[test]
    fn raw_identifiers_keep_their_prefix() {
        // `r#fn` is a name, not the keyword; `r#type` likewise. A raw
        // string must still lex as a string, not a raw identifier.
        let lexed = lex("fn r#fn() {} let r#type = 1; let s = r#\"str\"#;");
        assert_eq!(
            idents(&lexed),
            vec!["fn", "r#fn", "let", "r#type", "let", "s"]
        );
        assert!(lexed
            .tokens
            .iter()
            .any(|t| matches!(&t.tok, Tok::Str(s) if s == "str")));
    }

    #[test]
    fn comments_are_captured_with_spans() {
        let src = "\
// ordering: relaxed is fine, gauge only
x.load(o);
/* block
   spanning */ y.load(o);
z.load(o);
";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].end_line, 1);
        assert_eq!(lexed.comments[1].line, 3);
        assert_eq!(lexed.comments[1].end_line, 4);
        // The line comment annotates itself and the next line only.
        assert!(lexed.has_comment_tag(1, "ordering:"));
        assert!(lexed.has_comment_tag(2, "ordering:"));
        assert!(!lexed.has_comment_tag(3, "ordering:"));
        // The block comment annotates through its end line + 1.
        assert!(lexed.has_comment_tag(4, "spanning"));
        assert!(lexed.has_comment_tag(5, "spanning"));
        assert!(!lexed.has_comment_tag(6, "spanning"));
    }

    #[test]
    fn adjacent_line_comments_merge_into_one_block() {
        let src = "\
// ordering: Release pairs with the Acquire load in is_set;
// the flag itself is the only state this store publishes.
x.store(true, Ordering::Release);
y.load(o); // trailing note
// fresh block after a trailing comment
z.load(o);
";
        let lexed = lex(src);
        // Lines 1-2 merge; the trailing comment on line 4 and the line-5
        // comment stay separate (code sits between / before them).
        assert_eq!(lexed.comments.len(), 3);
        assert_eq!((lexed.comments[0].line, lexed.comments[0].end_line), (1, 2));
        assert!(lexed.comments[0].text.contains("ordering:"));
        assert!(lexed.comments[0].text.contains("only state"));
        assert_eq!((lexed.comments[1].line, lexed.comments[1].end_line), (4, 4));
        assert_eq!((lexed.comments[2].line, lexed.comments[2].end_line), (5, 5));
        // The tag on the block's first line now annotates the op two
        // lines below — the multi-line justification case.
        assert!(lexed.has_comment_tag(3, "ordering:"));
        assert!(!lexed.has_comment_tag(4, "ordering:"));
        // A trailing comment does not absorb the block above its line.
        assert!(lexed.has_comment_tag(6, "fresh block"));
    }

    #[test]
    fn suppression_parsing() {
        let src = "\
x.unwrap(); // goalrec-lint:allow(no-panic-paths): fixture boundary, cannot fail
// goalrec-lint:allow(raw-id-cast, no-panic-paths): two rules
y.unwrap(); // goalrec-lint:allow(no-panic-paths)
";
        let lexed = lex(src);
        assert_eq!(lexed.suppressions.len(), 3);
        assert_eq!(lexed.suppressions[0].line, 1);
        assert_eq!(lexed.suppressions[0].rules, vec!["no-panic-paths"]);
        assert_eq!(
            lexed.suppressions[0].justification,
            "fixture boundary, cannot fail"
        );
        assert_eq!(
            lexed.suppressions[1].rules,
            vec!["raw-id-cast", "no-panic-paths"]
        );
        assert!(lexed.suppressions[2].justification.is_empty());
    }
}
