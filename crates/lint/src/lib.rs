//! goalrec-lint: in-tree static analysis for the goalrec workspace.
//!
//! Eight deny-by-default rules over a hand-rolled, string/comment/attribute
//! aware token scan plus a conservative workspace call graph (the container
//! is registry-less, so no external parser crates):
//!
//! * `no-panic-paths` — no `unwrap`/`expect`/`panic!`-family calls in
//!   non-test library-crate code;
//! * `raw-id-cast` — no raw `as u32`/`as usize` casts in files importing
//!   the `core::ids` newtypes;
//! * `metric-name-registry` — metric names live in
//!   `crates/obs/src/names.rs` and stay in sync with the README's
//!   Observability table (drift reported in both directions);
//! * `strategy-surface` — every `Strategy` impl overrides `rank_observed`;
//! * `hot-path-alloc` — no allocation or blocking call reachable from the
//!   serving roots ([`callgraph`]), with the reachability trace in every
//!   finding;
//! * `atomic-ordering` — every `Ordering::*` use carries an `// ordering:`
//!   justification; `SeqCst` denied outright; `Relaxed` on registered
//!   cross-thread atomics flagged regardless;
//! * `lock-discipline` — nested lock acquisition must match the declared
//!   `[[lock_order]]` hierarchy;
//! * `justified-unsafe` — every `unsafe` in non-test library code carries
//!   a `// safety:` comment (or rustdoc `# Safety` section) saying why it
//!   is sound.
//!
//! Escapes: an inline `goalrec-lint:allow` comment directive — the rule
//! in parentheses, then a mandatory `: justification` tail, covering its
//! own line and the next — or a `lint.toml` `[[allow]]` entry (rule +
//! path prefix + reason). The committed `lint-baseline.json` pins the
//! allow-listed finding counts so allowlisted debt cannot grow silently.

pub mod baseline;
pub mod callgraph;
pub mod config;
pub mod engine;
pub mod graph;
pub mod lexer;
pub mod rules;

pub use engine::{run_workspace, RunResult};
pub use rules::{Finding, RULES};
