//! goalrec-lint: in-tree static analysis for the goalrec workspace.
//!
//! Four deny-by-default rules over a hand-rolled, string/comment/attribute
//! aware token scan (the container is registry-less, so no external parser
//! crates):
//!
//! * `no-panic-paths` — no `unwrap`/`expect`/`panic!`-family calls in
//!   non-test library-crate code;
//! * `raw-id-cast` — no raw `as u32`/`as usize` casts in files importing
//!   the `core::ids` newtypes;
//! * `metric-name-registry` — metric names live in
//!   `crates/obs/src/names.rs` and stay in sync with the README's
//!   Observability table (drift reported in both directions);
//! * `strategy-surface` — every `Strategy` impl overrides `rank_observed`.
//!
//! Escapes: an inline `goalrec-lint:allow` comment directive — the rule
//! in parentheses, then a mandatory `: justification` tail, covering its
//! own line and the next — or a `lint.toml` `[[allow]]` entry (rule +
//! path prefix + reason).

pub mod config;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use engine::{run_workspace, RunResult};
pub use rules::{Finding, RULES};
