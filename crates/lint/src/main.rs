//! CLI entry point. Exit codes: 0 clean, 1 findings, 2 usage/config error.

use goalrec_lint::{run_workspace, Finding};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
goalrec-lint — workspace static analysis

USAGE:
    goalrec-lint [--root DIR] [--json]

OPTIONS:
    --root DIR   Workspace root to lint (default: current directory)
    --json       Emit findings as JSON on stdout
    -h, --help   Show this help

EXIT CODES:
    0  no findings
    1  findings reported
    2  usage or configuration error";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("goalrec-lint: --root needs a directory argument\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("goalrec-lint: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let result = match run_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("goalrec-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", to_json(&result.findings));
    } else {
        for f in &result.findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        if result.findings.is_empty() {
            println!(
                "goalrec-lint: clean ({} files scanned)",
                result.files_scanned
            );
        } else {
            println!(
                "goalrec-lint: {} finding(s) in {} files scanned",
                result.findings.len(),
                result.files_scanned
            );
        }
    }

    if result.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Stable JSON output; fields in a fixed order, findings pre-sorted by the
/// engine. Hand-built because the workspace is registry-less.
fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"count\": ");
    out.push_str(&findings.len().to_string());
    out.push_str(",\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"file\": \"");
        out.push_str(&json_escape(&f.file));
        out.push_str("\", \"line\": ");
        out.push_str(&f.line.to_string());
        out.push_str(", \"rule\": \"");
        out.push_str(&json_escape(f.rule));
        out.push_str("\", \"message\": \"");
        out.push_str(&json_escape(&f.message));
        out.push_str("\"}");
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
