//! CLI entry point. Exit codes: 0 clean, 1 findings or baseline drift,
//! 2 usage/config error.

use goalrec_lint::baseline::{self, BaselineRow};
use goalrec_lint::engine::{run_workspace_with, RunOptions};
use goalrec_lint::Finding;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
goalrec-lint — workspace static analysis

USAGE:
    goalrec-lint [--root DIR] [--format FMT] [--changed-files LIST]
                 [--baseline FILE] [--write-baseline FILE]

OPTIONS:
    --root DIR             Workspace root to lint (default: current directory)
    --format FMT           Output format: text (default), json, github
    --json                 Shorthand for --format json
    --changed-files LIST   Comma-separated workspace-relative files; only
                           findings in them are reported (the call graph is
                           still built over the whole workspace). Repeatable.
    --baseline FILE        Diff allow-listed findings against a committed
                           baseline; drift fails the run
    --write-baseline FILE  Write the current allow-listed findings as the
                           new baseline
    -h, --help             Show this help

EXIT CODES:
    0  no findings and no baseline drift
    1  findings reported or baseline drift
    2  usage or configuration error";

enum Format {
    Text,
    Json,
    Github,
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut changed: Option<BTreeSet<String>> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("github") => format = Format::Github,
                other => {
                    let got = other.unwrap_or("nothing");
                    eprintln!(
                        "goalrec-lint: --format needs text|json|github, got {got}\n\n{USAGE}"
                    );
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("goalrec-lint: --root needs a directory argument\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--changed-files" => match args.next() {
                Some(list) => {
                    let set = changed.get_or_insert_with(BTreeSet::new);
                    for f in list.split(',') {
                        let f = f.trim().trim_start_matches("./");
                        if !f.is_empty() {
                            set.insert(f.replace('\\', "/"));
                        }
                    }
                }
                None => {
                    eprintln!("goalrec-lint: --changed-files needs a file list\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("goalrec-lint: --baseline needs a file argument\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("goalrec-lint: --write-baseline needs a file argument\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("goalrec-lint: unknown argument `{other}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let opts = RunOptions {
        changed_files: changed,
    };
    let result = match run_workspace_with(&root, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("goalrec-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let rows = baseline::rows_from(&result.allowed);

    match format {
        Format::Json => println!("{}", to_json(&result.findings, &rows)),
        Format::Github => {
            for f in &result.findings {
                println!(
                    "::error file={},line={},title=goalrec-lint[{}]::{}",
                    f.file,
                    f.line,
                    f.rule,
                    github_escape(&f.message)
                );
            }
            summary(&result.findings, &result.allowed, result.files_scanned);
        }
        Format::Text => {
            for f in &result.findings {
                println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
            }
            summary(&result.findings, &result.allowed, result.files_scanned);
        }
    }

    if let Some(path) = &write_baseline {
        if let Err(e) = std::fs::write(path, baseline::render(&rows)) {
            eprintln!("goalrec-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "goalrec-lint: wrote {} baseline row(s) to {}",
            rows.len(),
            path.display()
        );
    }

    let mut drift = false;
    if let Some(path) = &baseline_path {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "goalrec-lint: cannot read baseline {}: {e} \
                     (bootstrap it with --write-baseline)",
                    path.display()
                );
                return ExitCode::from(2);
            }
        };
        let committed = match baseline::parse(&text) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("goalrec-lint: {e}");
                return ExitCode::from(2);
            }
        };
        for line in baseline::diff(&rows, &committed) {
            drift = true;
            println!("baseline drift: {line}");
        }
        if !drift {
            println!(
                "goalrec-lint: baseline in sync ({} allow-listed finding row(s))",
                committed.len()
            );
        }
    }

    if result.findings.is_empty() && !drift {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn summary(findings: &[Finding], allowed: &[Finding], files_scanned: usize) {
    if findings.is_empty() {
        println!("goalrec-lint: clean ({files_scanned} files scanned)");
    } else {
        println!(
            "goalrec-lint: {} finding(s) in {} files scanned",
            findings.len(),
            files_scanned
        );
    }
    if !allowed.is_empty() {
        println!(
            "goalrec-lint: {} allow-listed finding(s) tracked by the baseline",
            allowed.len()
        );
    }
}

/// GitHub workflow-command escaping for the message field.
fn github_escape(s: &str) -> String {
    s.replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A")
}

/// Stable JSON output; fields in a fixed order, findings pre-sorted by the
/// engine. Hand-built because the workspace is registry-less.
fn to_json(findings: &[Finding], allowed: &[BaselineRow]) -> String {
    let mut out = String::from("{\n  \"count\": ");
    out.push_str(&findings.len().to_string());
    out.push_str(",\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"file\": \"");
        out.push_str(&json_escape(&f.file));
        out.push_str("\", \"line\": ");
        out.push_str(&f.line.to_string());
        out.push_str(", \"rule\": \"");
        out.push_str(&json_escape(f.rule));
        out.push_str("\", \"message\": \"");
        out.push_str(&json_escape(&f.message));
        out.push_str("\"}");
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"allowed\": [");
    for (i, r) in allowed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"rule\": \"");
        out.push_str(&json_escape(&r.rule));
        out.push_str("\", \"file\": \"");
        out.push_str(&json_escape(&r.file));
        out.push_str("\", \"count\": ");
        out.push_str(&r.count.to_string());
        out.push('}');
    }
    if !allowed.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
