//! The lint rules and the finding type.
//!
//! Severity is deny-by-default: every hit is a finding unless covered by a
//! justified inline suppression or a `lint.toml` allowlist entry. Rules are
//! purely token-based (see [`crate::lexer`]) so they cannot be fooled by
//! matches inside comments or string literals.

use crate::lexer::{Lexed, Tok, Token};
use std::collections::BTreeSet;

/// Rule id: no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`/`dbg!`
/// in non-test library-crate code.
pub const NO_PANIC_PATHS: &str = "no-panic-paths";
/// Rule id: no raw `as u32`/`as usize` casts in files that import the id
/// newtypes.
pub const RAW_ID_CAST: &str = "raw-id-cast";
/// Rule id: metric names must come from the central registry and stay in
/// sync with the README.
pub const METRIC_NAME_REGISTRY: &str = "metric-name-registry";
/// Rule id: every `Strategy` impl must override `rank_observed`.
pub const STRATEGY_SURFACE: &str = "strategy-surface";
/// Rule id: no allocation or blocking call reachable from the serving
/// hot-path roots (see [`crate::callgraph`]).
pub const HOT_PATH_ALLOC: &str = "hot-path-alloc";
/// Rule id: every `Ordering::*` use carries an `// ordering:` justification
/// comment; `SeqCst` is deny-by-default; `Relaxed` on registered
/// cross-thread atomics is flagged.
pub const ATOMIC_ORDERING: &str = "atomic-ordering";
/// Rule id: nested lock acquisition must match the `[[lock_order]]`
/// hierarchy declared in `lint.toml`.
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
/// Rule id: every `unsafe` keyword in non-test library-crate code carries
/// a `// safety:` justification comment (or a rustdoc `# Safety` section
/// for `unsafe fn` contracts).
pub const JUSTIFIED_UNSAFE: &str = "justified-unsafe";
/// Pseudo-rule for malformed `goalrec-lint:allow` directives. Not
/// suppressible and not allowlistable.
pub const SUPPRESSION_FORMAT: &str = "suppression-format";

/// The suppressible/allowlistable rules.
pub const RULES: &[&str] = &[
    NO_PANIC_PATHS,
    RAW_ID_CAST,
    METRIC_NAME_REGISTRY,
    STRATEGY_SURFACE,
    HOT_PATH_ALLOC,
    ATOMIC_ORDERING,
    LOCK_DISCIPLINE,
    JUSTIFIED_UNSAFE,
];

/// Library crates whose `src/` trees are held to the panic-free and
/// newtype-cast invariants (binaries — `cli`, `bench`, `lint` — may abort).
/// `server` ships a binary too, but its request path must never panic, so it
/// is held to the library bar.
pub const LIBRARY_CRATES: &[&str] = &[
    "baselines",
    "core",
    "datasets",
    "eval",
    "faults",
    "obs",
    "server",
    "shard",
    "textmine",
];

/// Workspace-relative path of the central metric-name registry.
pub const METRIC_REGISTRY_PATH: &str = "crates/obs/src/names.rs";

/// Directory holding the `Strategy` implementations.
pub const STRATEGIES_DIR: &str = "crates/core/src/strategies/";

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

fn in_lib_crate_src(path: &str) -> bool {
    LIBRARY_CRATES.iter().any(|c| {
        path.strip_prefix("crates/")
            .and_then(|p| p.strip_prefix(c))
            .is_some_and(|p| p.starts_with("/src/"))
    })
}

fn ident(t: Option<&Token>) -> Option<&str> {
    match t {
        Some(Token {
            tok: Tok::Ident(s), ..
        }) => Some(s.as_str()),
        _ => None,
    }
}

fn is_punct(t: Option<&Token>, c: char) -> bool {
    matches!(t, Some(Token { tok: Tok::Punct(p), .. }) if *p == c)
}

/// Runs every per-file source rule on one lexed file.
pub fn source_rules(path: &str, lexed: &Lexed, namespaces: &BTreeSet<String>) -> Vec<Finding> {
    let mut findings = Vec::new();
    no_panic_paths(path, lexed, &mut findings);
    raw_id_cast(path, lexed, &mut findings);
    metric_literals(path, lexed, namespaces, &mut findings);
    strategy_surface(path, lexed, &mut findings);
    justified_unsafe(path, lexed, &mut findings);
    findings
}

/// The comment tag that justifies an `unsafe` block, fn or impl. Matched
/// case-insensitively so both `// safety: …` and the rustdoc-conventional
/// `// SAFETY: …` / `/// # Safety` forms count.
pub const SAFETY_TAG: &str = "safety:";

fn annotated_with_safety(lexed: &Lexed, line: u32) -> bool {
    lexed.comments.iter().any(|c| {
        if !c.annotates(line) {
            return false;
        }
        let text = c.text.to_ascii_lowercase();
        text.contains(SAFETY_TAG) || text.contains("# safety")
    })
}

/// Line of the first token of the statement/item containing `idx` — the
/// token after the nearest preceding `;`, `{` or `}`. Lets a safety
/// comment sit above a `#[cfg(...)]` attribute or the start of a
/// multi-line statement whose `unsafe` lands further down.
fn stmt_start_line(toks: &[Token], idx: usize) -> u32 {
    let mut p = idx;
    while p > 0 {
        let t = toks.get(p - 1);
        if is_punct(t, ';') || is_punct(t, '{') || is_punct(t, '}') {
            break;
        }
        p -= 1;
    }
    toks.get(p).map_or(0, |t| t.line)
}

/// `justified-unsafe`: every `unsafe` in non-test library code must say
/// why it is sound. The mmap fast path and the parallel CSR fill are the
/// only sanctioned users; a bare `unsafe` is either missing its proof or
/// should not exist.
fn justified_unsafe(path: &str, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if !in_lib_crate_src(path) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ident(Some(t)) != Some("unsafe") || lexed.is_test_line(t.line) {
            continue;
        }
        let justified = annotated_with_safety(lexed, t.line)
            || annotated_with_safety(lexed, stmt_start_line(toks, i));
        if !justified {
            findings.push(Finding {
                rule: JUSTIFIED_UNSAFE,
                file: path.to_owned(),
                line: t.line,
                message: "`unsafe` lacks a justification — add a `// safety: <why this is \
                          sound>` comment (or a `# Safety` rustdoc section for an `unsafe fn` \
                          contract) on or directly above this line"
                    .to_owned(),
            });
        }
    }
}

/// `no-panic-paths`: forbid process-aborting calls in non-test library
/// code. Malformed requests must surface as `Result`s, not aborts.
fn no_panic_paths(path: &str, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if !in_lib_crate_src(path) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = &t.tok else { continue };
        if lexed.is_test_line(t.line) {
            continue;
        }
        let finding = |message: String| Finding {
            rule: NO_PANIC_PATHS,
            file: path.to_owned(),
            line: t.line,
            message,
        };
        match name.as_str() {
            "unwrap" | "expect"
                if i > 0 && is_punct(toks.get(i - 1), '.') && is_punct(toks.get(i + 1), '(') =>
            {
                findings.push(finding(format!(
                    "`.{name}(…)` aborts the process on malformed input; return one of the \
                     `error.rs` Result types instead (or suppress with a justification)"
                )));
            }
            "panic" | "todo" | "unimplemented" | "dbg" if is_punct(toks.get(i + 1), '!') => {
                findings.push(finding(format!(
                    "`{name}!` is forbidden in non-test library code; make the failure a \
                     `Result` (or suppress with a justification)"
                )));
            }
            _ => {}
        }
    }
}

/// `raw-id-cast`: in files that import the `core::ids` newtypes, raw
/// `as u32`/`as usize` casts bypass the typed id API.
fn raw_id_cast(path: &str, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if !in_lib_crate_src(path) || !imports_id_newtypes(&lexed.tokens) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if ident(Some(t)) != Some("as") || lexed.is_test_line(t.line) {
            continue;
        }
        let Some(target @ ("u32" | "usize")) = ident(toks.get(i + 1)) else {
            continue;
        };
        findings.push(Finding {
            rule: RAW_ID_CAST,
            file: path.to_owned(),
            line: t.line,
            message: format!(
                "raw `as {target}` cast in id-typed code; route the conversion through \
                 `ActionId`/`GoalId`/`ImplId` (`::new`, `.raw()`, `.index()`)"
            ),
        });
    }
}

fn imports_id_newtypes(toks: &[Token]) -> bool {
    let mut i = 0usize;
    while i < toks.len() {
        if ident(toks.get(i)) != Some("use") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let mut hit = false;
        while j < toks.len() && !is_punct(toks.get(j), ';') {
            if let Some(name) = ident(toks.get(j)) {
                if matches!(name, "ids" | "ActionId" | "GoalId" | "ImplId") {
                    hit = true;
                }
            }
            j += 1;
        }
        if hit {
            return true;
        }
        i = j;
    }
    false
}

/// `metric-name-registry`, call-site half: a string literal carrying a
/// registered metric namespace outside the registry module is drift
/// waiting to happen.
fn metric_literals(
    path: &str,
    lexed: &Lexed,
    namespaces: &BTreeSet<String>,
    findings: &mut Vec<Finding>,
) {
    if path == METRIC_REGISTRY_PATH {
        return;
    }
    for t in &lexed.tokens {
        let Tok::Str(s) = &t.tok else { continue };
        if lexed.is_test_line(t.line) {
            continue;
        }
        let Some((head, rest)) = s.split_once('.') else {
            continue;
        };
        if rest.is_empty() || !namespaces.contains(head) {
            continue;
        }
        findings.push(Finding {
            rule: METRIC_NAME_REGISTRY,
            file: path.to_owned(),
            line: t.line,
            message: format!(
                "metric name \"{s}\" must be a constant (or pattern helper) from \
                 `goalrec_obs::names`, not an inline literal"
            ),
        });
    }
}

/// `strategy-surface`: a `Strategy` impl that keeps the default
/// `rank_observed` silently reports truncated candidate counts, dodging
/// the serving instrumentation.
fn strategy_surface(path: &str, lexed: &Lexed, findings: &mut Vec<Finding>) {
    if !path.starts_with(STRATEGIES_DIR) {
        return;
    }
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if ident(toks.get(i)) != Some("impl") || lexed.is_test_line(toks[i].line) {
            i += 1;
            continue;
        }
        // Gather the header identifiers up to the impl body.
        let mut j = i + 1;
        let mut header: Vec<(usize, &str)> = Vec::new();
        while j < toks.len() && !is_punct(toks.get(j), '{') && !is_punct(toks.get(j), ';') {
            if let Some(name) = ident(toks.get(j)) {
                header.push((j, name));
            }
            j += 1;
        }
        let target = header
            .windows(3)
            .find(|w| w[0].1 == "Strategy" && w[1].1 == "for")
            .map(|w| w[2].1.to_owned());
        let (Some(name), true) = (target, is_punct(toks.get(j), '{')) else {
            i = j + 1;
            continue;
        };
        // Scan the impl body for `fn rank_observed`.
        let mut depth = 1usize;
        let mut k = j + 1;
        let mut has_override = false;
        while k < toks.len() && depth > 0 {
            match &toks[k].tok {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => depth -= 1,
                Tok::Ident(s) if s == "fn" && ident(toks.get(k + 1)) == Some("rank_observed") => {
                    has_override = true;
                }
                _ => {}
            }
            k += 1;
        }
        if !has_override {
            findings.push(Finding {
                rule: STRATEGY_SURFACE,
                file: path.to_owned(),
                line: toks[i].line,
                message: format!(
                    "`impl Strategy for {name}` must override `rank_observed` so the \
                     `strategy.<name>.candidates` instrumentation sees the true \
                     pre-truncation candidate count"
                ),
            });
        }
        i = k;
    }
}

/// Collects the metric-name string literals declared in the registry
/// module (non-test code only), with their lines.
pub fn registry_names(lexed: &Lexed) -> Vec<(String, u32)> {
    lexed
        .tokens
        .iter()
        .filter(|t| !lexed.is_test_line(t.line))
        .filter_map(|t| match &t.tok {
            Tok::Str(s) => Some((s.clone(), t.line)),
            _ => None,
        })
        .collect()
}

/// The top-level namespaces (`model`, `strategy`, …) of the registry.
pub fn registry_namespaces(names: &[(String, u32)]) -> BTreeSet<String> {
    names
        .iter()
        .filter_map(|(n, _)| n.split_once('.').map(|(head, _)| head.to_owned()))
        .collect()
}

/// Extracts the metric names documented in the README's "Observability"
/// table: the first backticked token of each table row, when it has the
/// dotted metric shape.
pub fn readme_metrics(text: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = raw.trim();
        if let Some(heading) = line.strip_prefix("## ") {
            in_section = heading.trim() == "Observability";
            continue;
        }
        if !in_section || !line.starts_with('|') {
            continue;
        }
        let Some(name) = first_backticked(line) else {
            continue;
        };
        if is_metric_name(&name) {
            out.push((name, line_no));
        }
    }
    out
}

fn first_backticked(line: &str) -> Option<String> {
    let start = line.find('`')? + 1;
    let len = line[start..].find('`')?;
    Some(line[start..start + len].to_owned())
}

/// Whether a string has the registered metric-name shape: two or more
/// dot-separated segments of `[a-z0-9_]`, where a segment may also be a
/// `<placeholder>`.
pub fn is_metric_name(s: &str) -> bool {
    let segments: Vec<&str> = s.split('.').collect();
    if segments.len() < 2 {
        return false;
    }
    segments.iter().all(|seg| {
        let inner = seg
            .strip_prefix('<')
            .and_then(|x| x.strip_suffix('>'))
            .unwrap_or(seg);
        !inner.is_empty()
            && !inner.contains('<')
            && !inner.contains('>')
            && inner
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn lib_crate_scoping() {
        assert!(in_lib_crate_src("crates/core/src/model.rs"));
        assert!(in_lib_crate_src("crates/eval/src/metrics/tpr.rs"));
        assert!(!in_lib_crate_src("crates/cli/src/main.rs"));
        assert!(!in_lib_crate_src("crates/lint/src/rules.rs"));
        assert!(!in_lib_crate_src("crates/core/tests/observability.rs"));
        assert!(!in_lib_crate_src("crates/corex/src/lib.rs"));
    }

    #[test]
    fn panic_rule_spares_tests_and_lookalikes() {
        let src = "\
fn live(x: Option<u32>) -> u32 {
    x.unwrap_or(7); // unwrap_or is fine
    x.unwrap()
}
#[cfg(test)]
mod tests {
    fn t(x: Option<u32>) { x.unwrap(); }
}
";
        let lexed = lex(src);
        let mut findings = Vec::new();
        no_panic_paths("crates/core/src/x.rs", &lexed, &mut findings);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn cast_rule_requires_an_ids_import() {
        let with_import = lex("use crate::ids::ActionId;\nfn f(x: u64) { let _ = x as u32; }\n");
        let mut findings = Vec::new();
        raw_id_cast("crates/core/src/x.rs", &with_import, &mut findings);
        assert_eq!(findings.len(), 1);

        let without = lex("fn f(x: u64) { let _ = x as u32; }\n");
        findings.clear();
        raw_id_cast("crates/core/src/x.rs", &without, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn unsafe_rule_demands_a_safety_comment() {
        let src = "\
fn f(p: *const u32) -> u32 {
    // SAFETY: caller guarantees p is valid for reads.
    let a = unsafe { *p };
    let b = unsafe { *p };
    a + b
}
// safety: immutable shared memory, reads only.
#[cfg(unix)]
unsafe impl Send for X {}
unsafe impl Sync for X {}
/// Docs.
///
/// # Safety
///
/// `p` must be valid.
pub unsafe fn g(p: *const u32) -> u32 { *p }
#[cfg(test)]
mod tests {
    fn t(p: *const u32) { unsafe { *p; } }
}
";
        let lexed = lex(src);
        let mut findings = Vec::new();
        justified_unsafe("crates/datasets/src/mmap.rs", &lexed, &mut findings);
        // Line 4 (second block, no comment) and line 10 (Sync impl, the
        // Send comment does not reach past the intervening item).
        assert_eq!(
            findings.iter().map(|f| f.line).collect::<Vec<_>>(),
            vec![4, 10]
        );
        assert!(findings.iter().all(|f| f.rule == JUSTIFIED_UNSAFE));

        // Out of library scope: binaries may keep their unsafe terse.
        findings.clear();
        justified_unsafe("crates/cli/src/commands.rs", &lexed, &mut findings);
        assert!(findings.is_empty());
    }

    #[test]
    fn metric_name_shape() {
        assert!(is_metric_name("model.builds"));
        assert!(is_metric_name("strategy.<name>.latency"));
        assert!(!is_metric_name(
            "check.sh".replace("check", "Check").as_str()
        ));
        assert!(!is_metric_name("nodots"));
        assert!(!is_metric_name("model."));
        assert!(!is_metric_name("model.<>"));
    }

    #[test]
    fn readme_table_extraction() {
        let text = "\
# Title
## Observability
Some prose with `model.ghost` outside a table.
| Metric | Kind |
|---|---|
| `model.builds` | counter |
| `strategy.<name>.latency` | histogram |
## Next section
| `model.not_counted` | counter |
";
        let got = readme_metrics(text);
        assert_eq!(
            got,
            vec![
                ("model.builds".to_owned(), 6),
                ("strategy.<name>.latency".to_owned(), 7)
            ]
        );
    }
}
