//! Nothing to report; the lint.toml is the problem.

pub fn id(x: u64) -> u64 {
    x
}
