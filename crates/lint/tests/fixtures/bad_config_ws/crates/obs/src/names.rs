//! Registry for the bad-config fixture.

pub const MODEL_BUILDS: &str = "model.builds";
