//! This workspace has no metric registry; linting it is a config error.

pub fn id(x: u64) -> u64 {
    x
}
