//! Nothing to report.

pub fn double(x: u64) -> u64 {
    x.saturating_mul(2)
}
