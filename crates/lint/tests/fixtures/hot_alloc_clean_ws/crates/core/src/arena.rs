//! Clean: the root fills caller-provided scratch and never allocates;
//! `report` allocates but no root reaches it.

pub trait Strategy {
    fn rank_into(&self, out: &mut Vec<u32>);
    fn rank_observed(&self) {}
}

pub struct Arena;

impl Strategy for Arena {
    fn rank_into(&self, out: &mut Vec<u32>) {
        out.clear();
        fill(out);
    }
    fn rank_observed(&self) {}
}

fn fill(out: &mut Vec<u32>) {
    out.push(7);
}

pub fn report(out: &[u32]) -> String {
    let mut s = String::new();
    s.push_str(if out.is_empty() { "empty" } else { "full" });
    s
}
