//! Known-bad: allocation and blocking calls reachable from roots, via
//! plain, qualified (`<T as Trait>::call`) and multi-line call forms.

pub trait Strategy {
    fn rank_into(&self);
    fn rank_observed(&self) {}
}

pub struct Greedy;

impl Strategy for Greedy {
    fn rank_into(&self) {
        scratch();
    }
    fn rank_observed(&self) {}
}

pub struct Wide;

impl Strategy for Wide {
    fn rank_into(&self) {
        <Greedy as Strategy>::rank_into(&Greedy);
    }
    fn rank_observed(&self) {}
}

fn scratch() {
    let mut v = Vec::new();
    v.push(1u32);
    let doubled: Vec<u32> = v
        .iter()
        .map(|x| x * 2)
        .collect();
    nap(doubled.len());
}

fn nap(_n: usize) {
    std::thread::sleep(std::time::Duration::from_millis(1));
}
