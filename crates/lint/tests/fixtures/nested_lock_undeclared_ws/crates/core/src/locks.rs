//! Known-bad: `b` is taken while the guard on `a` is still held, and no
//! hierarchy declares `a → b`.

use std::sync::{Mutex, PoisonError};

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

pub fn cross(p: &Pair) -> u32 {
    let g = p.a.lock().unwrap_or_else(PoisonError::into_inner);
    let h = p.b.lock().unwrap_or_else(PoisonError::into_inner);
    *g + *h
}
