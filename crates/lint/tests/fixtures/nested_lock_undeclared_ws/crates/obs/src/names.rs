//! Fixture registry.

pub const MODEL_BUILDS: &str = "model.builds";
