//! Known-bad: SeqCst (comment or not) plus an unjustified Relaxed.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn stamp(c: &AtomicU64) {
    // ordering: a comment cannot excuse SeqCst
    c.store(1, Ordering::SeqCst);
    c.store(2, Ordering::Relaxed);
    // ordering: pure statistic, nothing published through it
    c.store(3, Ordering::Relaxed);
}
