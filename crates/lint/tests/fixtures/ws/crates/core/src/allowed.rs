//! Suppression and allowlist behavior.

use goalrec_core::ids::GoalId;

pub fn suppressed(x: Option<u32>) -> u32 {
    // goalrec-lint:allow(no-panic-paths): fixture boundary, the caller checked
    x.unwrap()
}

pub fn unjustified(y: Option<u32>) -> u32 {
    y.unwrap() // goalrec-lint:allow(no-panic-paths)
}

pub fn toml_covered(g: GoalId) -> usize {
    g.raw() as usize
}
