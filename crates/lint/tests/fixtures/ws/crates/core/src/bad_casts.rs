//! Known-bad: raw id casts with the newtypes imported.

use goalrec_core::ids::ActionId;

pub fn slot(a: ActionId) -> usize {
    a.raw() as usize
}
