//! Known-bad: inline metric-name literal.

pub fn bump() {
    record("model.builds");
}

fn record(_name: &str) {}
