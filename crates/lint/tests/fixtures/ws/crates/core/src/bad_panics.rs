//! Known-bad: panic paths in non-test code.

pub fn first(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn second() {
    panic!("boom");
}

pub fn third() -> u32 {
    todo!()
}

pub fn lookalike(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    pub fn exempt(x: Option<u32>) -> u32 {
        x.unwrap()
    }
}
