//! Known-bad: a Strategy impl without rank_observed.

pub trait Strategy {
    fn rank(&self);
    fn rank_observed(&self) {}
}

pub struct NoObserved;

impl Strategy for NoObserved {
    fn rank(&self) {}
}

pub struct HasObserved;

impl Strategy for HasObserved {
    fn rank(&self) {}
    fn rank_observed(&self) {}
}
