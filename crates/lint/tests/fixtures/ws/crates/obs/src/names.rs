//! Fixture metric registry.

pub const MODEL_BUILDS: &str = "model.builds";
pub const STRATEGY_LATENCY: &str = "strategy.<name>.latency";
pub const MODEL_ORPHAN: &str = "model.orphan";
