//! End-to-end tests over the fixture workspaces in `tests/fixtures/`.
//!
//! `ws/` has one known-bad file per rule plus a clean one, a suppression
//! pair (justified and unjustified), a `lint.toml`-covered cast, and
//! registry↔README drift in both directions; the expected findings are
//! asserted exactly (file, line, rule).

use goalrec_lint::rules::{
    ATOMIC_ORDERING, HOT_PATH_ALLOC, LOCK_DISCIPLINE, METRIC_NAME_REGISTRY, NO_PANIC_PATHS,
    RAW_ID_CAST, STRATEGY_SURFACE, SUPPRESSION_FORMAT,
};
use goalrec_lint::run_workspace;
use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn triples(result: &goalrec_lint::engine::RunResult) -> Vec<(&str, u32, &str)> {
    result
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.rule))
        .collect()
}

#[test]
fn bad_workspace_findings_are_exact() {
    let result = run_workspace(&fixture("ws")).unwrap();
    let got: Vec<(&str, u32, &str)> = result
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.rule))
        .collect();
    assert_eq!(
        got,
        vec![
            // README documents model.ghost, which is not registered.
            ("README.md", 9, METRIC_NAME_REGISTRY),
            // The unjustified trailing suppression: the directive itself is
            // reported and the unwrap it decorates still fires.
            ("crates/core/src/allowed.rs", 11, NO_PANIC_PATHS),
            ("crates/core/src/allowed.rs", 11, SUPPRESSION_FORMAT),
            ("crates/core/src/bad_casts.rs", 6, RAW_ID_CAST),
            ("crates/core/src/bad_metrics.rs", 4, METRIC_NAME_REGISTRY),
            ("crates/core/src/bad_panics.rs", 4, NO_PANIC_PATHS),
            ("crates/core/src/bad_panics.rs", 8, NO_PANIC_PATHS),
            ("crates/core/src/bad_panics.rs", 12, NO_PANIC_PATHS),
            (
                "crates/core/src/strategies/bad_strategy.rs",
                10,
                STRATEGY_SURFACE
            ),
            // Registered model.orphan is missing from the README table.
            ("crates/obs/src/names.rs", 5, METRIC_NAME_REGISTRY),
        ]
    );
}

#[test]
fn suppression_and_allowlist_escapes_work() {
    let result = run_workspace(&fixture("ws")).unwrap();
    // The justified suppression in allowed.rs swallows its unwrap (line 7)…
    assert!(!result
        .findings
        .iter()
        .any(|f| f.file.ends_with("allowed.rs") && f.line == 7));
    // …and the lint.toml entry swallows the raw cast (line 15).
    assert!(!result
        .findings
        .iter()
        .any(|f| f.file.ends_with("allowed.rs") && f.rule == RAW_ID_CAST));
    // The clean file and the test-gated unwrap contribute nothing.
    assert!(!result.findings.iter().any(|f| f.file.ends_with("clean.rs")));
    assert!(!result
        .findings
        .iter()
        .any(|f| f.file.ends_with("bad_panics.rs") && f.line > 18));
}

#[test]
fn clean_workspace_reports_nothing() {
    let result = run_workspace(&fixture("clean_ws")).unwrap();
    assert!(result.findings.is_empty(), "got: {:?}", result.findings);
    assert_eq!(result.files_scanned, 2);
}

#[test]
fn missing_registry_is_a_config_error() {
    let err = run_workspace(&fixture("broken_ws")).unwrap_err();
    assert!(err.contains("names.rs"), "got: {err}");
}

#[test]
fn unknown_rule_in_allowlist_is_a_config_error() {
    let err = run_workspace(&fixture("bad_config_ws")).unwrap_err();
    assert!(err.contains("no-such-rule"), "got: {err}");
}

#[test]
fn binary_exit_codes_and_json_are_stable() {
    let bin = env!("CARGO_BIN_EXE_goalrec-lint");

    let clean = Command::new(bin)
        .args(["--root", fixture("clean_ws").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(clean.status.code(), Some(0));

    let bad = Command::new(bin)
        .args(["--root", fixture("ws").to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(1));
    let json = String::from_utf8(bad.stdout).unwrap();
    assert!(json.starts_with("{\n  \"count\": 10,"), "got: {json}");
    assert!(json.contains(
        "{\"file\": \"crates/core/src/bad_casts.rs\", \"line\": 6, \
         \"rule\": \"raw-id-cast\","
    ));

    let broken = Command::new(bin)
        .args(["--root", fixture("broken_ws").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(broken.status.code(), Some(2));

    let usage = Command::new(bin).arg("--bogus").output().unwrap();
    assert_eq!(usage.status.code(), Some(2));
}

#[test]
fn hot_alloc_reachable_findings_carry_the_trace() {
    let result = run_workspace(&fixture("hot_alloc_reachable_ws")).unwrap();
    assert_eq!(
        triples(&result),
        vec![
            ("crates/core/src/hot.rs", 28, HOT_PATH_ALLOC),
            // The multi-line `.collect()` chain is still one call.
            ("crates/core/src/hot.rs", 33, HOT_PATH_ALLOC),
            ("crates/core/src/hot.rs", 38, HOT_PATH_ALLOC),
        ]
    );
    // Every finding explains how the root reaches the site. `Wide`'s
    // qualified `<Greedy as Strategy>::rank_into` call also reaches
    // `scratch`, but each definition is reported once, from one path.
    assert!(result.findings[0].message.contains(
        "trace: rank_into (crates/core/src/hot.rs:12) → scratch (crates/core/src/hot.rs:27)"
    ));
    assert!(result.findings[1]
        .message
        .contains("`.collect()` allocates"));
    assert!(result.findings[2]
        .message
        .contains("→ nap (crates/core/src/hot.rs:37)"));
    assert!(result.findings[2]
        .message
        .contains("`thread::sleep` blocks"));
}

#[test]
fn hot_alloc_clean_workspace_reports_nothing() {
    // The root writes only into caller-provided scratch; the allocating
    // `report` helper exists but no root reaches it.
    let result = run_workspace(&fixture("hot_alloc_clean_ws")).unwrap();
    assert!(result.findings.is_empty(), "got: {:?}", result.findings);
}

#[test]
fn seqcst_is_flagged_even_with_a_comment() {
    let result = run_workspace(&fixture("seqcst_unjustified_ws")).unwrap();
    assert_eq!(
        triples(&result),
        vec![
            // SeqCst: the `// ordering:` comment above does not excuse it.
            ("crates/core/src/atomics.rs", 7, ATOMIC_ORDERING),
            // Relaxed without a justification comment.
            ("crates/core/src/atomics.rs", 8, ATOMIC_ORDERING),
            // The commented Relaxed on line 10 is clean.
        ]
    );
    assert!(result.findings[0].message.contains("deny-by-default"));
    assert!(result.findings[1].message.contains("lacks a justification"));
}

#[test]
fn undeclared_nested_locks_are_flagged() {
    let result = run_workspace(&fixture("nested_lock_undeclared_ws")).unwrap();
    assert_eq!(
        triples(&result),
        vec![("crates/core/src/locks.rs", 13, LOCK_DISCIPLINE)]
    );
    assert!(result.findings[0]
        .message
        .contains("`a → b` is not in the declared hierarchy"));
}

#[test]
fn changed_files_mode_narrows_the_report() {
    let bin = env!("CARGO_BIN_EXE_goalrec-lint");
    let root = fixture("ws");

    // Only bad_casts.rs is "changed": the cast finding survives, the
    // panics and strategy findings elsewhere do not.
    let out = Command::new(bin)
        .args([
            "--root",
            root.to_str().unwrap(),
            "--changed-files",
            "crates/core/src/bad_casts.rs",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("bad_casts.rs:6"), "got: {text}");
    assert!(!text.contains("bad_panics.rs"), "got: {text}");

    // A clean changed file exits 0 even though the workspace has findings.
    let clean = Command::new(bin)
        .args([
            "--root",
            root.to_str().unwrap(),
            "--changed-files",
            "crates/core/src/clean.rs",
        ])
        .output()
        .unwrap();
    assert_eq!(clean.status.code(), Some(0));
}

#[test]
fn github_format_emits_error_annotations() {
    let bin = env!("CARGO_BIN_EXE_goalrec-lint");
    let out = Command::new(bin)
        .args([
            "--root",
            fixture("nested_lock_undeclared_ws").to_str().unwrap(),
            "--format",
            "github",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains(
            "::error file=crates/core/src/locks.rs,line=13,title=goalrec-lint[lock-discipline]::"
        ),
        "got: {text}"
    );
}

#[test]
fn baseline_round_trip_detects_drift() {
    let bin = env!("CARGO_BIN_EXE_goalrec-lint");
    let root = fixture("ws");
    let dir = std::env::temp_dir().join(format!("goalrec-lint-baseline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("baseline.json");

    // Bootstrap: --write-baseline records the allow-listed findings.
    let write = Command::new(bin)
        .args([
            "--root",
            root.to_str().unwrap(),
            "--write-baseline",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(path.exists(), "write-baseline produced no file");

    // Same workspace, same baseline: no drift (exit still 1 — the ws
    // fixture has real findings — but no drift message).
    let same = Command::new(bin)
        .args([
            "--root",
            root.to_str().unwrap(),
            "--baseline",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let same_out = String::from_utf8(same.stdout).unwrap();
    assert!(same_out.contains("baseline in sync"), "got: {same_out}");

    // A doctored baseline (one extra allow-listed row) is drift: exit 1
    // and a drift explanation.
    let doctored = std::fs::read_to_string(&path).unwrap();
    let injected = doctored.replacen(
        "[",
        "[\n  {\"rule\": \"raw-id-cast\", \"file\": \"crates/core/src/ghost.rs\", \"count\": 2},",
        1,
    );
    let doctored_path = dir.join("doctored.json");
    std::fs::write(&doctored_path, injected).unwrap();
    let drift = Command::new(bin)
        .args([
            "--root",
            root.to_str().unwrap(),
            "--baseline",
            doctored_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(drift.status.code(), Some(1));
    let drift_out = String::from_utf8(drift.stdout).unwrap();
    assert!(
        drift_out.contains("baseline drift") && drift_out.contains("ghost.rs"),
        "got: {drift_out}"
    );

    // A missing baseline file is a config error with a bootstrap hint.
    let missing = Command::new(bin)
        .args([
            "--root",
            root.to_str().unwrap(),
            "--baseline",
            dir.join("nope.json").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(missing.status.code(), Some(2));
    let missing_err = String::from_utf8(missing.stderr).unwrap();
    assert!(
        missing_err.contains("--write-baseline"),
        "got: {missing_err}"
    );

    drop(write);
    let _ = std::fs::remove_dir_all(&dir);
}
