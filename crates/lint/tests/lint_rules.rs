//! End-to-end tests over the fixture workspaces in `tests/fixtures/`.
//!
//! `ws/` has one known-bad file per rule plus a clean one, a suppression
//! pair (justified and unjustified), a `lint.toml`-covered cast, and
//! registry↔README drift in both directions; the expected findings are
//! asserted exactly (file, line, rule).

use goalrec_lint::rules::{
    METRIC_NAME_REGISTRY, NO_PANIC_PATHS, RAW_ID_CAST, STRATEGY_SURFACE, SUPPRESSION_FORMAT,
};
use goalrec_lint::run_workspace;
use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn bad_workspace_findings_are_exact() {
    let result = run_workspace(&fixture("ws")).unwrap();
    let got: Vec<(&str, u32, &str)> = result
        .findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.rule))
        .collect();
    assert_eq!(
        got,
        vec![
            // README documents model.ghost, which is not registered.
            ("README.md", 9, METRIC_NAME_REGISTRY),
            // The unjustified trailing suppression: the directive itself is
            // reported and the unwrap it decorates still fires.
            ("crates/core/src/allowed.rs", 11, NO_PANIC_PATHS),
            ("crates/core/src/allowed.rs", 11, SUPPRESSION_FORMAT),
            ("crates/core/src/bad_casts.rs", 6, RAW_ID_CAST),
            ("crates/core/src/bad_metrics.rs", 4, METRIC_NAME_REGISTRY),
            ("crates/core/src/bad_panics.rs", 4, NO_PANIC_PATHS),
            ("crates/core/src/bad_panics.rs", 8, NO_PANIC_PATHS),
            ("crates/core/src/bad_panics.rs", 12, NO_PANIC_PATHS),
            (
                "crates/core/src/strategies/bad_strategy.rs",
                10,
                STRATEGY_SURFACE
            ),
            // Registered model.orphan is missing from the README table.
            ("crates/obs/src/names.rs", 5, METRIC_NAME_REGISTRY),
        ]
    );
}

#[test]
fn suppression_and_allowlist_escapes_work() {
    let result = run_workspace(&fixture("ws")).unwrap();
    // The justified suppression in allowed.rs swallows its unwrap (line 7)…
    assert!(!result
        .findings
        .iter()
        .any(|f| f.file.ends_with("allowed.rs") && f.line == 7));
    // …and the lint.toml entry swallows the raw cast (line 15).
    assert!(!result
        .findings
        .iter()
        .any(|f| f.file.ends_with("allowed.rs") && f.rule == RAW_ID_CAST));
    // The clean file and the test-gated unwrap contribute nothing.
    assert!(!result.findings.iter().any(|f| f.file.ends_with("clean.rs")));
    assert!(!result
        .findings
        .iter()
        .any(|f| f.file.ends_with("bad_panics.rs") && f.line > 18));
}

#[test]
fn clean_workspace_reports_nothing() {
    let result = run_workspace(&fixture("clean_ws")).unwrap();
    assert!(result.findings.is_empty(), "got: {:?}", result.findings);
    assert_eq!(result.files_scanned, 2);
}

#[test]
fn missing_registry_is_a_config_error() {
    let err = run_workspace(&fixture("broken_ws")).unwrap_err();
    assert!(err.contains("names.rs"), "got: {err}");
}

#[test]
fn unknown_rule_in_allowlist_is_a_config_error() {
    let err = run_workspace(&fixture("bad_config_ws")).unwrap_err();
    assert!(err.contains("no-such-rule"), "got: {err}");
}

#[test]
fn binary_exit_codes_and_json_are_stable() {
    let bin = env!("CARGO_BIN_EXE_goalrec-lint");

    let clean = Command::new(bin)
        .args(["--root", fixture("clean_ws").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(clean.status.code(), Some(0));

    let bad = Command::new(bin)
        .args(["--root", fixture("ws").to_str().unwrap(), "--json"])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(1));
    let json = String::from_utf8(bad.stdout).unwrap();
    assert!(json.starts_with("{\n  \"count\": 10,"), "got: {json}");
    assert!(json.contains(
        "{\"file\": \"crates/core/src/bad_casts.rs\", \"line\": 6, \
         \"rule\": \"raw-id-cast\","
    ));

    let broken = Command::new(bin)
        .args(["--root", fixture("broken_ws").to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(broken.status.code(), Some(2));

    let usage = Command::new(bin).arg("--bogus").output().unwrap();
    assert_eq!(usage.status.code(), Some(2));
}
