//! Lock-free log2-bucketed histogram.
//!
//! Values (nanoseconds, set sizes, …) land in 65 buckets: bucket 0 holds
//! the value `0`, bucket `i ≥ 1` holds `[2^(i-1), 2^i)`. Relative bucket
//! resolution is a factor of two, which is plenty for latency summaries
//! while keeping recording to two atomic adds plus min/max updates — safe
//! to call concurrently from every rayon worker.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: value 0 plus one bucket per u64 bit position.
pub const NUM_BUCKETS: usize = 65;

/// What a histogram's values measure, for report rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Unit {
    /// Durations in nanoseconds (fed by [`crate::Timer`]).
    Nanos,
    /// Dimensionless counts (set sizes, result lengths).
    Count,
}

/// A concurrent log2-bucketed histogram.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    unit: Unit,
}

impl Histogram {
    /// Creates an empty histogram measuring `unit`.
    pub fn new(unit: Unit) -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            unit,
        }
    }

    /// The measured unit.
    pub fn unit(&self) -> Unit {
        self.unit
    }

    /// Bucket index a value lands in: 0 for 0, else `64 - leading_zeros`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_lower(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Inclusive upper bound of bucket `i`.
    pub fn bucket_upper(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        // ordering: Relaxed throughout — the histogram is pure statistics;
        // no reader infers the visibility of other memory from a counter
        // value, and the fields are never read as a consistent snapshot
        // (quantile/mean tolerate torn reads across buckets by design).
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed); // ordering: as above
        self.sum.fetch_add(value, Ordering::Relaxed); // ordering: as above
        self.min.fetch_min(value, Ordering::Relaxed); // ordering: as above
        self.max.fetch_max(value, Ordering::Relaxed); // ordering: as above
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        // ordering: Relaxed — statistics read, no cross-field consistency.
        self.count.load(Ordering::Relaxed)
    }

    /// Number of values recorded into bucket `i` (`i < NUM_BUCKETS`),
    /// for cumulative exposition formats.
    pub fn bucket_count(&self, i: usize) -> u64 {
        // ordering: Relaxed — statistics read, no cross-field consistency.
        self.buckets[i].load(Ordering::Relaxed)
    }

    /// Sum of recorded values (wrapping only past `u64::MAX` total).
    pub fn sum(&self) -> u64 {
        // ordering: Relaxed — statistics read, no cross-field consistency.
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded value, 0 when empty.
    pub fn min(&self) -> u64 {
        // ordering: Relaxed — statistics read, no cross-field consistency.
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX && self.count() == 0 {
            0
        } else {
            m
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        // ordering: Relaxed — statistics read, no cross-field consistency.
        self.max.load(Ordering::Relaxed)
    }

    /// Arithmetic mean of recorded values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimated `q`-quantile (`0.0 ≤ q ≤ 1.0`) by nearest rank over the
    /// buckets. The estimate is the upper bound of the rank's bucket
    /// (clamped to the observed maximum), so it is exact up to bucket
    /// resolution: within a factor of two of the true quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cumulative = 0u64;
        for i in 0..NUM_BUCKETS {
            // ordering: Relaxed — the quantile is a bucket-resolution
            // estimate and tolerates concurrent recording mid-scan.
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            if cumulative >= rank {
                return Self::bucket_upper(i).min(self.max());
            }
        }
        self.max()
    }

    /// Zeroes all state in place; concurrent recorders stay valid.
    pub fn reset(&self) {
        // ordering: Relaxed — reset races benignly with recorders; a value
        // recorded mid-reset may survive partially, which the statistical
        // contract (bucket-resolution estimates) already absorbs.
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed); // ordering: as above
        }
        self.count.store(0, Ordering::Relaxed); // ordering: as above
        self.sum.store(0, Ordering::Relaxed); // ordering: as above
        self.min.store(u64::MAX, Ordering::Relaxed); // ordering: as above
        self.max.store(0, Ordering::Relaxed); // ordering: as above
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn summary_statistics() {
        let h = Histogram::new(Unit::Count);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(0.5), 0);
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 106);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 26.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_land_in_right_bucket() {
        let h = Histogram::new(Unit::Nanos);
        for v in 1..=1000u64 {
            h.record(v);
        }
        // True p50 = 500 (bucket 9: 256..=511); estimate must agree
        // up to bucket resolution.
        let p50 = h.quantile(0.5);
        assert_eq!(Histogram::bucket_index(p50), Histogram::bucket_index(500));
        let p99 = h.quantile(0.99);
        assert_eq!(Histogram::bucket_index(p99), Histogram::bucket_index(990));
        // p100 clamps to the observed max exactly.
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn reset_zeroes_in_place() {
        let h = Histogram::new(Unit::Count);
        h.record(5);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.min(), 0);
        h.record(2);
        assert_eq!(h.count(), 1);
    }
}
