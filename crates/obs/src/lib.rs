//! Observability layer for the goalrec workspace: metrics and lightweight
//! tracing for model builds, recommendation strategies, and batch serving.
//!
//! The crate is deliberately dependency-light and lock-free on the hot
//! path. Three metric kinds cover the workspace's needs:
//!
//! * [`Counter`] — monotonically increasing `AtomicU64` event counts;
//! * [`Gauge`] — last-written `f64` values (throughput, model sizes);
//! * [`Histogram`] — log2-bucketed value distributions with `p50`/`p95`/
//!   `p99` summaries, used for latencies (nanoseconds) and set sizes.
//!
//! Handles are interned in a process-global [`Registry`] keyed by
//! dot-separated metric names. The naming scheme used across the
//! workspace:
//!
//! * `model.build.*` — one span per compiled index (`a_idx`, `g_idx`,
//!   `gi_a_idx`, `gi_g_idx`, `a_gi_idx`) plus `model.build.total`;
//! * `strategy.<name>.*` — per-strategy `requests`, `latency`
//!   (nanoseconds) and `candidates` (pre-truncation candidate-set size);
//! * `batch.*` — batch-serving throughput and per-request latency, with
//!   `batch.<method>.wall` capturing each method's batch wall clock.
//!
//! Timing uses the RAII [`Timer`]: the span is recorded into its
//! histogram when the guard drops.
//!
//! ```
//! use goalrec_obs as obs;
//!
//! obs::counter("demo.requests").inc();
//! {
//!     let _span = obs::Timer::scoped("demo.latency");
//!     // ... timed work ...
//! }
//! obs::histogram("demo.sizes").record(42);
//! let report = obs::snapshot();
//! assert_eq!(report.counter("demo.requests"), Some(1));
//! println!("{report}");
//! ```
//!
//! Recording costs a handle lookup (one `RwLock` read + map probe) plus a
//! few atomic adds; hot call sites cache the `Arc` handles returned by
//! [`counter`]/[`gauge`]/[`histogram`] to skip the lookup entirely.

mod histogram;
pub mod names;
mod registry;
mod report;
pub mod tail;
mod timer;
pub mod trace;

pub use histogram::{Histogram, Unit};
pub use registry::{Counter, Gauge, Registry};
pub use report::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsReport};
pub use tail::{TailConfig, TailSampler};
pub use timer::Timer;
pub use trace::{fresh_trace_id, CompletedTrace, Span, SpanToken, TraceContext, TraceId};

use std::sync::Arc;

/// The process-global registry backing the convenience functions.
pub fn global() -> &'static Registry {
    registry::global()
}

/// Counter handle from the global registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Gauge handle from the global registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Count-unit histogram handle from the global registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Nanosecond-unit histogram handle from the global registry.
pub fn histogram_ns(name: &str) -> Arc<Histogram> {
    global().histogram_ns(name)
}

/// Snapshot of every metric in the global registry.
pub fn snapshot() -> MetricsReport {
    global().snapshot()
}

/// Prometheus text exposition of every metric in the global registry.
pub fn render_prometheus() -> String {
    global().render_prometheus()
}

/// Zeroes every metric in the global registry in place.
///
/// Cached handles stay valid and keep recording into the same metrics;
/// use this to isolate one run's measurements (tests, benchmarks).
pub fn reset() {
    global().reset()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_through_global_registry() {
        // One shared registry per process: namespace this test's metrics.
        counter("lib_test.requests").inc_by(3);
        gauge("lib_test.throughput").set(125.5);
        histogram("lib_test.sizes").record(7);
        {
            let _t = Timer::scoped("lib_test.latency");
            std::hint::black_box(1 + 1);
        }
        let report = snapshot();
        assert_eq!(report.counter("lib_test.requests"), Some(3));
        assert_eq!(report.gauge("lib_test.throughput"), Some(125.5));
        let h = report
            .histogram("lib_test.latency")
            .expect("latency recorded");
        assert_eq!(h.count, 1);
        assert!(h.max > 0, "timer span must be nonzero");
        let text = report.to_string();
        assert!(text.contains("lib_test.requests"));
        assert!(text.contains("lib_test.latency"));
    }
}
