//! Central registry of every metric name the workspace records.
//!
//! All metric names recorded through `goalrec-obs` MUST be declared here —
//! either as a concrete constant or as a `<placeholder>` pattern expanded
//! through one of the helper functions. The `goalrec-lint`
//! `metric-name-registry` rule enforces both directions:
//!
//! * call sites outside this module may not pass metric-name string
//!   literals to the recording functions;
//! * the README "Observability" table and this registry must list exactly
//!   the same names (drift is reported either way).
//!
//! Keep [`ALL`] in sync when adding a name: the lint's README cross-check
//! and the unit tests below read it.

// ---------------------------------------------------------------------
// Model construction (`GoalModel::build`).
// ---------------------------------------------------------------------

/// Counter: number of model compilations.
pub const MODEL_BUILDS: &str = "model.builds";
/// Histogram (ns): whole-build wall time.
pub const MODEL_BUILD_TOTAL: &str = "model.build.total";
/// Histogram (ns): `A-idx` phase (per-action occurrence counts).
pub const MODEL_BUILD_A_IDX: &str = "model.build.a_idx";
/// Histogram (ns): `G-idx` phase (per-goal implementation counts).
pub const MODEL_BUILD_G_IDX: &str = "model.build.g_idx";
/// Histogram (ns): `GI-A-idx` phase (implementation → activity).
pub const MODEL_BUILD_GI_A_IDX: &str = "model.build.gi_a_idx";
/// Histogram (ns): `GI-G-idx` phase (implementation ↔ goal).
pub const MODEL_BUILD_GI_G_IDX: &str = "model.build.gi_g_idx";
/// Histogram (ns): `A-GI-idx` phase (action → implementations).
pub const MODEL_BUILD_A_GI_IDX: &str = "model.build.a_gi_idx";
/// Gauge: `|L|` of the most recently built model.
pub const MODEL_IMPLS: &str = "model.impls";
/// Gauge: `|𝒜|` of the most recently built model.
pub const MODEL_ACTIONS: &str = "model.actions";
/// Gauge: `|𝒢|` of the most recently built model.
pub const MODEL_GOALS: &str = "model.goals";
/// Gauge: approximate heap footprint of the most recently built model.
pub const MODEL_MEMORY_BYTES: &str = "model.memory_bytes";

// ---------------------------------------------------------------------
// Per-strategy serving (`GoalRecommender::recommend`).
// ---------------------------------------------------------------------

/// Pattern — counter: requests served by one strategy.
pub const STRATEGY_REQUESTS: &str = "strategy.<name>.requests";
/// Pattern — histogram (ns): per-request latency of one strategy.
pub const STRATEGY_LATENCY: &str = "strategy.<name>.latency";
/// Pattern — histogram: pre-truncation candidate-set size per request.
pub const STRATEGY_CANDIDATES: &str = "strategy.<name>.candidates";

/// `strategy.<name>.requests` for a concrete strategy name.
pub fn strategy_requests(name: &str) -> String {
    expand(STRATEGY_REQUESTS, name)
}

/// `strategy.<name>.latency` for a concrete strategy name.
pub fn strategy_latency(name: &str) -> String {
    expand(STRATEGY_LATENCY, name)
}

/// `strategy.<name>.candidates` for a concrete strategy name.
pub fn strategy_candidates(name: &str) -> String {
    expand(STRATEGY_CANDIDATES, name)
}

// ---------------------------------------------------------------------
// Batch serving (`recommend_batch{,_actions}`).
// ---------------------------------------------------------------------

/// Counter: total batch requests across all methods.
pub const BATCH_REQUESTS: &str = "batch.requests";
/// Histogram (ns): per-request latency inside the batch workers.
pub const BATCH_LATENCY: &str = "batch.latency";
/// Gauge: requests per second of the most recent batch run.
pub const BATCH_THROUGHPUT_RPS: &str = "batch.throughput_rps";
/// Pattern — histogram (ns): one method's batch wall clock.
pub const BATCH_METHOD_WALL: &str = "batch.<method>.wall";

/// `batch.<method>.wall` for a concrete method name.
pub fn batch_method_wall(method: &str) -> String {
    expand(BATCH_METHOD_WALL, method)
}

// ---------------------------------------------------------------------
// HTTP serving (`goalrec-serve`, crates/server).
// ---------------------------------------------------------------------

/// Counter: requests that received a response (any status).
pub const SERVER_REQUESTS: &str = "server.requests";
/// Counter: connections refused with 503 because the accept queue was full.
pub const SERVER_REJECTED: &str = "server.rejected";
/// Counter: requests answered 408 because the per-request deadline expired.
pub const SERVER_TIMEOUTS: &str = "server.timeouts";
/// Counter: connections accepted into the queue.
pub const SERVER_CONNECTIONS: &str = "server.connections";
/// Histogram (ns): wall time from dequeue/first byte to response written.
pub const SERVER_LATENCY: &str = "server.latency";
/// Gauge: requests currently being parsed, routed, or written.
pub const SERVER_INFLIGHT: &str = "server.inflight";
/// Pattern — counter: requests dispatched to one route.
pub const SERVER_ROUTE_REQUESTS: &str = "server.route.<route>.requests";
/// Counter: hot-reload attempts (admin endpoint or `SIGHUP`).
pub const SERVER_RELOAD_ATTEMPTS: &str = "server.reload.attempts";
/// Counter: hot-reload attempts that failed and rolled back.
pub const SERVER_RELOAD_FAILURES: &str = "server.reload.failures";
/// Histogram (ns): wall time of one reload attempt (load + validate +
/// recommender rebuild + swap).
pub const SERVER_RELOAD_LATENCY: &str = "server.reload.latency";
/// Gauge: generation of the model currently serving (bumps on every
/// successful reload).
pub const SERVER_MODEL_GENERATION: &str = "server.model_generation";
/// Gauge: milliseconds since the serving model was built (refreshed on
/// every `/healthz` probe).
pub const SERVER_MODEL_AGE_MS: &str = "server.model_age_ms";
/// Counter: completed traces offered to the tail sampler.
pub const SERVER_TRACE_SAMPLED: &str = "server.trace.sampled";
/// Gauge: completed traces currently retained by the tail sampler
/// (slow sets + uniform ring), refreshed on every `/healthz` probe.
pub const SERVER_TRACE_TAIL_OCCUPANCY: &str = "server.trace.tail_occupancy";

/// `server.route.<route>.requests` for a concrete route name.
pub fn server_route_requests(route: &str) -> String {
    expand(SERVER_ROUTE_REQUESTS, route)
}

// ---------------------------------------------------------------------
// Live library mutation (`/v1/admin/library/append` + background
// compaction, crates/server).
// ---------------------------------------------------------------------

/// Counter: implementations accepted into the staging delta segment.
pub const LIBRARY_APPENDS: &str = "library.appends";
/// Gauge: live implementations currently staged in the delta segment
/// (sums over shards on the sharded plane; drops to 0 on compaction).
pub const LIBRARY_DELTA_SIZE: &str = "library.delta_size";
/// Counter: compactions that merged the delta into a fresh CSR base and
/// swapped it in generation-atomically.
pub const LIBRARY_COMPACTIONS: &str = "library.compactions";
/// Counter: compaction attempts that failed at any phase and rolled
/// back, leaving the old generation serving and the delta intact.
pub const LIBRARY_COMPACTION_FAILURES: &str = "library.compaction_failures";
/// Histogram (ns): wall time of one compaction attempt
/// (merge + persist + swap).
pub const LIBRARY_COMPACTION_LATENCY: &str = "library.compaction_latency";

// ---------------------------------------------------------------------
// Sharded scatter-gather serving (`goalrec-serve --shards N`).
// ---------------------------------------------------------------------

/// Pattern — counter: recommend requests scattered to one shard.
pub const SHARD_REQUESTS: &str = "shard.<i>.requests";
/// Pattern — histogram (ns): one shard's scatter-phase latency (its part
/// of the per-request fan-out, before the global merge).
pub const SHARD_LATENCY: &str = "shard.<i>.latency";

/// `shard.<i>.requests` for a concrete shard index.
pub fn shard_requests(i: usize) -> String {
    expand(SHARD_REQUESTS, &i.to_string())
}

/// `shard.<i>.latency` for a concrete shard index.
pub fn shard_latency(i: usize) -> String {
    expand(SHARD_LATENCY, &i.to_string())
}

// ---------------------------------------------------------------------
// Trace span names (`TraceContext` spans; same registry discipline as
// metric names — the `span` namespace is protected by `goalrec-lint`).
// ---------------------------------------------------------------------

/// Span: time an admitted connection waited in the admission queue
/// before a worker picked it up (first request of a connection only).
pub const SPAN_QUEUE_WAIT: &str = "span.queue_wait";
/// Span: awaiting the first byte plus parsing the request head and body.
pub const SPAN_PARSE: &str = "span.parse";
/// Span: `router::handle` — routing plus the handler body.
pub const SPAN_HANDLE: &str = "span.handle";
/// Span: one `Strategy::rank_into` call inside the recommend handler.
pub const SPAN_RANK: &str = "span.rank";
/// Child span of `span.rank`: candidate generation.
pub const SPAN_RANK_CANDIDATES: &str = "span.rank.candidates";
/// Child span of `span.rank`: top-k selection over the candidates.
pub const SPAN_RANK_TOPK: &str = "span.rank.topk";
/// Span: serializing and writing the response bytes.
pub const SPAN_WRITE: &str = "span.write";
/// Span: reading the library file during a hot reload.
pub const SPAN_RELOAD_LOAD: &str = "span.reload.load";
/// Span: `GoalModel::validate` during a hot reload.
pub const SPAN_RELOAD_VALIDATE: &str = "span.reload.validate";
/// Span: `GoalModel::build` plus recommender construction (reloads and
/// first boot).
pub const SPAN_MODEL_BUILD: &str = "span.model_build";
/// Pattern — child span of `span.rank`: one shard's scatter phase inside
/// a sharded recommend.
pub const SPAN_SHARD: &str = "span.shard.<i>";
/// Span: compaction merge phase — base ⊕ delta into a fresh CSR model.
pub const SPAN_COMPACT_MERGE: &str = "span.compact.merge";
/// Span: compaction persist phase — crash-safe `atomic_write` of the
/// merged library (plus read-back verification) and WAL truncation.
pub const SPAN_COMPACT_PERSIST: &str = "span.compact.persist";
/// Span: compaction swap phase — generation-atomic publication of the
/// merged base with an empty delta.
pub const SPAN_COMPACT_SWAP: &str = "span.compact.swap";

/// How many shards get individually named `span.shard.<i>` spans and
/// pre-expanded static names; the server clamps `--shards` to this.
pub const MAX_NAMED_SHARDS: usize = 16;

/// Pre-expanded `span.shard.<i>` names: span names must be `&'static
/// str` (the trace recorder is allocation-free), so the pattern is
/// expanded at compile time for every shard index the server can run.
const SPAN_SHARD_NAMES: [&str; MAX_NAMED_SHARDS] = [
    "span.shard.0",
    "span.shard.1",
    "span.shard.2",
    "span.shard.3",
    "span.shard.4",
    "span.shard.5",
    "span.shard.6",
    "span.shard.7",
    "span.shard.8",
    "span.shard.9",
    "span.shard.10",
    "span.shard.11",
    "span.shard.12",
    "span.shard.13",
    "span.shard.14",
    "span.shard.15",
];

/// The static `span.shard.<i>` name for shard `i`; indexes past
/// [`MAX_NAMED_SHARDS`] share the last slot rather than panicking.
pub fn span_shard(i: usize) -> &'static str {
    SPAN_SHARD_NAMES[i.min(MAX_NAMED_SHARDS - 1)]
}

// ---------------------------------------------------------------------
// Evaluation harness (eval context + `repro`).
// ---------------------------------------------------------------------

/// Histogram (ns): full evaluation-context build.
pub const EVAL_CONTEXT_BUILD: &str = "eval.context.build";
/// Histogram (ns): FoodMart side of the context build.
pub const EVAL_CONTEXT_FOODMART: &str = "eval.context.foodmart";
/// Histogram (ns): 43Things side of the context build.
pub const EVAL_CONTEXT_FORTYTHREE: &str = "eval.context.fortythree";
/// Pattern — histogram (ns): one experiment's wall clock in `repro`.
pub const EVAL_EXPERIMENT_WALL: &str = "eval.<experiment>.wall";

/// `eval.<experiment>.wall` for a concrete experiment name.
pub fn eval_experiment_wall(experiment: &str) -> String {
    expand(EVAL_EXPERIMENT_WALL, experiment)
}

/// Every registered metric name and pattern, in README table order.
pub const ALL: &[&str] = &[
    MODEL_BUILDS,
    MODEL_BUILD_TOTAL,
    MODEL_BUILD_A_IDX,
    MODEL_BUILD_G_IDX,
    MODEL_BUILD_GI_A_IDX,
    MODEL_BUILD_GI_G_IDX,
    MODEL_BUILD_A_GI_IDX,
    MODEL_IMPLS,
    MODEL_ACTIONS,
    MODEL_GOALS,
    MODEL_MEMORY_BYTES,
    STRATEGY_REQUESTS,
    STRATEGY_LATENCY,
    STRATEGY_CANDIDATES,
    BATCH_REQUESTS,
    BATCH_LATENCY,
    BATCH_THROUGHPUT_RPS,
    BATCH_METHOD_WALL,
    SERVER_REQUESTS,
    SERVER_REJECTED,
    SERVER_TIMEOUTS,
    SERVER_CONNECTIONS,
    SERVER_LATENCY,
    SERVER_INFLIGHT,
    SERVER_ROUTE_REQUESTS,
    SERVER_RELOAD_ATTEMPTS,
    SERVER_RELOAD_FAILURES,
    SERVER_RELOAD_LATENCY,
    SERVER_MODEL_GENERATION,
    SERVER_MODEL_AGE_MS,
    SERVER_TRACE_SAMPLED,
    SERVER_TRACE_TAIL_OCCUPANCY,
    LIBRARY_APPENDS,
    LIBRARY_DELTA_SIZE,
    LIBRARY_COMPACTIONS,
    LIBRARY_COMPACTION_FAILURES,
    LIBRARY_COMPACTION_LATENCY,
    SHARD_REQUESTS,
    SHARD_LATENCY,
    SPAN_QUEUE_WAIT,
    SPAN_PARSE,
    SPAN_HANDLE,
    SPAN_RANK,
    SPAN_RANK_CANDIDATES,
    SPAN_RANK_TOPK,
    SPAN_WRITE,
    SPAN_RELOAD_LOAD,
    SPAN_RELOAD_VALIDATE,
    SPAN_MODEL_BUILD,
    SPAN_SHARD,
    SPAN_COMPACT_MERGE,
    SPAN_COMPACT_PERSIST,
    SPAN_COMPACT_SWAP,
    EVAL_CONTEXT_BUILD,
    EVAL_CONTEXT_FOODMART,
    EVAL_CONTEXT_FORTYTHREE,
    EVAL_EXPERIMENT_WALL,
];

/// Substitutes the single `<placeholder>` segment of a pattern constant.
///
/// Patterns without a placeholder come back unchanged, so the helpers can
/// never produce a name outside the registered shape.
fn expand(pattern: &str, value: &str) -> String {
    match (pattern.find('<'), pattern.rfind('>')) {
        (Some(start), Some(end)) if start < end => {
            let mut out = String::with_capacity(pattern.len() + value.len());
            out.push_str(&pattern[..start]);
            out.push_str(value);
            out.push_str(&pattern[end + 1..]);
            out
        }
        _ => pattern.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_duplicate_free_and_complete() {
        let mut seen = std::collections::HashSet::new();
        for name in ALL {
            assert!(seen.insert(*name), "duplicate registry entry {name}");
        }
        assert_eq!(ALL.len(), 57);
    }

    #[test]
    fn names_follow_the_dotted_lowercase_scheme() {
        for name in ALL {
            assert!(name.contains('.'), "{name} has no namespace");
            for segment in name.split('.') {
                assert!(!segment.is_empty(), "{name} has an empty segment");
                let pattern = segment.starts_with('<') && segment.ends_with('>');
                let inner = if pattern {
                    &segment[1..segment.len() - 1]
                } else {
                    segment
                };
                assert!(
                    inner
                        .chars()
                        .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                    "{name}: segment {segment} breaks the naming scheme"
                );
            }
        }
    }

    #[test]
    fn helpers_expand_their_patterns() {
        assert_eq!(strategy_requests("Breadth"), "strategy.Breadth.requests");
        assert_eq!(strategy_latency("Focus_cmp"), "strategy.Focus_cmp.latency");
        assert_eq!(strategy_candidates("X"), "strategy.X.candidates");
        assert_eq!(batch_method_wall("Breadth"), "batch.Breadth.wall");
        assert_eq!(
            server_route_requests("healthz"),
            "server.route.healthz.requests"
        );
        assert_eq!(eval_experiment_wall("table6"), "eval.table6.wall");
        assert_eq!(shard_requests(3), "shard.3.requests");
        assert_eq!(shard_latency(11), "shard.11.latency");
    }

    #[test]
    fn span_shard_table_matches_the_pattern() {
        for i in 0..MAX_NAMED_SHARDS {
            assert_eq!(span_shard(i), expand(SPAN_SHARD, &i.to_string()));
        }
        // Out-of-range indexes saturate instead of panicking.
        assert_eq!(span_shard(MAX_NAMED_SHARDS + 5), span_shard(15));
    }

    #[test]
    fn expand_without_placeholder_is_identity() {
        assert_eq!(expand(BATCH_REQUESTS, "x"), BATCH_REQUESTS);
    }
}
