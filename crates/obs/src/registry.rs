//! The metric registry: named handles with a process-global instance.

use crate::histogram::{Histogram, Unit};
use crate::report::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot, MetricsReport};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A monotonically increasing event counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.inc_by(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn inc_by(&self, n: u64) {
        // ordering: Relaxed — a pure statistic; atomicity keeps the total
        // exact and no reader infers other memory's visibility from it.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — scrape-side read of a pure statistic.
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        // ordering: Relaxed — races with concurrent increments benignly;
        // an increment landing mid-reset survives or vanishes whole.
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins `f64` metric (stored as bit pattern in an atomic).
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: f64) {
        // ordering: Relaxed — last-value-wins gauge; the single u64 store
        // is indivisible, so readers always see a complete bit pattern.
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        // ordering: Relaxed — scrape-side read of a last-value-wins gauge.
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        // ordering: Relaxed — races with concurrent sets benignly; one of
        // the complete values wins.
        self.0.store(0f64.to_bits(), Ordering::Relaxed);
    }
}

/// Interns metric handles by name and snapshots them into reports.
///
/// Handle lookup takes a read lock; registration (first use of a name)
/// briefly takes the write lock. Handles are `Arc`s — hot call sites keep
/// them around and never touch the lock again.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

// Poisoned locks are recovered with `PoisonError::into_inner` throughout:
// the maps only ever grow and their values are atomics, so a panic while
// holding a guard cannot leave them inconsistent — and telemetry must never
// take the process down.
fn intern<T>(
    map: &RwLock<BTreeMap<String, Arc<T>>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> Arc<T> {
    if let Some(found) = map
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(name)
    {
        return Arc::clone(found);
    }
    let mut write = map
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Arc::clone(
        write
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(make())),
    )
}

impl Registry {
    /// A fresh, empty registry (tests; production code uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter handle, registered on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name, Counter::default)
    }

    /// Gauge handle, registered on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name, Gauge::default)
    }

    /// Count-unit histogram handle, registered on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name, || Histogram::new(Unit::Count))
    }

    /// Nanosecond-unit histogram handle, registered on first use.
    ///
    /// The unit is fixed at registration: if the name already exists the
    /// existing histogram is returned regardless of unit.
    pub fn histogram_ns(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name, || Histogram::new(Unit::Nanos))
    }

    /// A point-in-time, serializable copy of every metric, sorted by name.
    // goalrec-lint:allow(hot-path-alloc): scrape-side introspection; name-aliases with TraceContext::snapshot
    pub fn snapshot(&self) -> MetricsReport {
        let counters = self
            .counters
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(name, c)| CounterSnapshot {
                name: name.clone(),
                value: c.get(),
            })
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(name, g)| GaugeSnapshot {
                name: name.clone(),
                value: g.get(),
            })
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(name, h)| HistogramSnapshot::of(name, h))
            .collect();
        MetricsReport {
            counters,
            gauges,
            histograms,
        }
    }

    /// Renders every metric in the Prometheus text exposition format.
    ///
    /// Dots in the registry's names become underscores under a
    /// `goalrec_` prefix (`server.latency` → `goalrec_server_latency`).
    /// Counters and gauges map one-to-one; log2 histograms are emitted as
    /// the standard cumulative `_bucket{le="…"}`/`_sum`/`_count` series,
    /// with one `le` boundary per occupied log2 bucket (upper bound
    /// inclusive) and the mandatory `+Inf` terminator.
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, c) in self
            .counters
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            let prom = prom_name(name);
            let _ = writeln!(out, "# TYPE {prom} counter");
            let _ = writeln!(out, "{prom} {}", c.get());
        }
        for (name, g) in self
            .gauges
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            let prom = prom_name(name);
            let _ = writeln!(out, "# TYPE {prom} gauge");
            let _ = writeln!(out, "{prom} {}", g.get());
        }
        for (name, h) in self
            .histograms
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            let prom = prom_name(name);
            let _ = writeln!(out, "# TYPE {prom} histogram");
            let highest = (0..crate::histogram::NUM_BUCKETS)
                .rev()
                .find(|&i| h.bucket_count(i) > 0);
            let mut cumulative = 0u64;
            for i in 0..=highest.unwrap_or(0) {
                cumulative += h.bucket_count(i);
                let _ = writeln!(
                    out,
                    "{prom}_bucket{{le=\"{}\"}} {cumulative}",
                    Histogram::bucket_upper(i)
                );
            }
            let _ = writeln!(out, "{prom}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{prom}_sum {}", h.sum());
            let _ = writeln!(out, "{prom}_count {}", h.count());
        }
        out
    }

    /// Zeroes every registered metric in place. Outstanding handles stay
    /// bound to their metrics and keep recording.
    pub fn reset(&self) {
        for c in self
            .counters
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            c.reset();
        }
        for g in self
            .gauges
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            g.reset();
        }
        for h in self
            .histograms
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .values()
        {
            h.reset();
        }
    }
}

/// Maps a dotted registry name onto the Prometheus grammar.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("goalrec_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_interned() {
        let r = Registry::new();
        r.counter("x").inc();
        r.counter("x").inc();
        assert_eq!(r.counter("x").get(), 2);
        assert!(Arc::ptr_eq(&r.counter("x"), &r.counter("x")));
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b.count").inc();
        r.counter("a.count").inc_by(5);
        r.gauge("z.rate").set(1.25);
        r.histogram_ns("m.latency").record(100);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["a.count", "b.count"]);
        assert_eq!(snap.gauges[0].value, 1.25);
        assert_eq!(snap.histograms[0].count, 1);
    }

    #[test]
    fn prometheus_names_and_cumulative_buckets() {
        assert_eq!(prom_name("server.latency"), "goalrec_server_latency");
        assert_eq!(
            prom_name("strategy.Breadth.requests"),
            "goalrec_strategy_Breadth_requests"
        );
        let r = Registry::new();
        let h = r.histogram("sizes");
        h.record(0);
        h.record(3);
        h.record(3);
        let text = r.render_prometheus();
        // Buckets 0 (value 0) and 2 (values 2..=3) are occupied; the
        // series is cumulative and closes with +Inf, sum, count.
        assert!(text.contains("goalrec_sizes_bucket{le=\"0\"} 1"), "{text}");
        assert!(text.contains("goalrec_sizes_bucket{le=\"1\"} 1"), "{text}");
        assert!(text.contains("goalrec_sizes_bucket{le=\"3\"} 3"), "{text}");
        assert!(
            text.contains("goalrec_sizes_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("goalrec_sizes_sum 6"), "{text}");
        assert!(text.contains("goalrec_sizes_count 3"), "{text}");
    }

    #[test]
    fn reset_keeps_registrations() {
        let r = Registry::new();
        let c = r.counter("keep");
        c.inc_by(9);
        r.reset();
        assert_eq!(c.get(), 0);
        c.inc();
        assert_eq!(r.snapshot().counter("keep"), Some(1));
    }
}
