//! Serializable point-in-time metric snapshots and their text rendering.

use crate::histogram::{Histogram, Unit};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One counter at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Dot-separated metric name.
    pub name: String,
    /// Counter value.
    pub value: u64,
}

/// One gauge at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Dot-separated metric name.
    pub name: String,
    /// Last value written.
    pub value: f64,
}

/// One histogram's summary at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Dot-separated metric name.
    pub name: String,
    /// What the values measure.
    pub unit: Unit,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median estimate (bucket resolution); `None` when no value was
    /// recorded — a clamped 0 would be ambiguous with a real 0
    /// observation.
    pub p50: Option<u64>,
    /// 95th percentile estimate (bucket resolution); `None` when empty.
    pub p95: Option<u64>,
    /// 99th percentile estimate (bucket resolution); `None` when empty.
    pub p99: Option<u64>,
}

impl HistogramSnapshot {
    /// Summarizes a live histogram.
    pub fn of(name: &str, h: &Histogram) -> Self {
        let quantile = |q| {
            if h.count() == 0 {
                None
            } else {
                Some(h.quantile(q))
            }
        };
        HistogramSnapshot {
            name: name.to_string(),
            unit: h.unit(),
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            mean: h.mean(),
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

/// Every metric of a registry at one point in time, sorted by name.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsReport {
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histogram summaries.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsReport {
    /// Value of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Value of a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// A histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// True when no metric was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Compact JSON encoding of the report.
    pub fn to_json(&self) -> String {
        // goalrec-lint:allow(no-panic-paths): serializing a plain struct of names and numbers cannot fail; an error here is a serializer bug, not input
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }
}

/// Renders an optional value (empty-histogram percentiles) as `-`.
fn fmt_opt(v: Option<u64>, unit: Unit) -> String {
    match v {
        Some(v) => fmt_value(v, unit),
        None => "-".to_owned(),
    }
}

/// Renders a duration-or-count value according to the histogram's unit.
fn fmt_value(v: u64, unit: Unit) -> String {
    match unit {
        Unit::Count => v.to_string(),
        Unit::Nanos => {
            if v < 1_000 {
                format!("{v}ns")
            } else if v < 1_000_000 {
                format!("{:.1}µs", v as f64 / 1_000.0)
            } else if v < 1_000_000_000 {
                format!("{:.1}ms", v as f64 / 1_000_000.0)
            } else {
                format!("{:.2}s", v as f64 / 1_000_000_000.0)
            }
        }
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return writeln!(f, "metrics: (none recorded)");
        }
        if !self.counters.is_empty() {
            writeln!(f, "counters")?;
            for c in &self.counters {
                writeln!(f, "  {:<42} {:>12}", c.name, c.value)?;
            }
        }
        if !self.gauges.is_empty() {
            writeln!(f, "gauges")?;
            for g in &self.gauges {
                writeln!(f, "  {:<42} {:>12.3}", g.name, g.value)?;
            }
        }
        if !self.histograms.is_empty() {
            writeln!(
                f,
                "histograms\n  {:<42} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "name", "count", "mean", "p50", "p95", "p99", "max"
            )?;
            for h in &self.histograms {
                writeln!(
                    f,
                    "  {:<42} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    h.name,
                    h.count,
                    fmt_value(h.mean as u64, h.unit),
                    fmt_opt(h.p50, h.unit),
                    fmt_opt(h.p95, h.unit),
                    fmt_opt(h.p99, h.unit),
                    fmt_value(h.max, h.unit),
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> MetricsReport {
        let r = Registry::new();
        r.counter("model.builds").inc();
        r.gauge("batch.throughput_rps").set(1234.5);
        let h = r.histogram_ns("strategy.Breadth.latency");
        h.record(1_500);
        h.record(2_500_000);
        r.snapshot()
    }

    #[test]
    fn lookup_helpers() {
        let rep = sample();
        assert_eq!(rep.counter("model.builds"), Some(1));
        assert_eq!(rep.counter("missing"), None);
        assert_eq!(rep.gauge("batch.throughput_rps"), Some(1234.5));
        assert_eq!(rep.histogram("strategy.Breadth.latency").unwrap().count, 2);
    }

    #[test]
    fn json_roundtrip() {
        let rep = sample();
        let back: MetricsReport = serde_json::from_str(&rep.to_json()).unwrap();
        assert_eq!(rep, back);
    }

    #[test]
    fn display_renders_units() {
        let text = sample().to_string();
        assert!(text.contains("counters"), "{text}");
        assert!(text.contains("model.builds"));
        assert!(text.contains("µs") || text.contains("ms"), "{text}");
    }

    #[test]
    fn empty_report_renders_placeholder() {
        assert!(MetricsReport::default()
            .to_string()
            .contains("none recorded"));
    }

    #[test]
    fn empty_histogram_percentiles_are_none_not_zero() {
        let r = Registry::new();
        let _ = r.histogram_ns("idle.latency");
        let zeros = r.histogram("real.zeros");
        zeros.record(0);
        let snap = r.snapshot();
        let idle = snap.histogram("idle.latency").unwrap();
        assert_eq!(idle.count, 0);
        assert_eq!((idle.p50, idle.p95, idle.p99), (None, None, None));
        // A genuine 0 observation stays distinguishable.
        let real = snap.histogram("real.zeros").unwrap();
        assert_eq!(real.p50, Some(0));
        // Serialization keeps the distinction: null vs 0.
        let json = snap.to_json();
        assert!(json.contains("null"), "{json}");
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.histogram("idle.latency").unwrap().p50, None);
        assert_eq!(back.histogram("real.zeros").unwrap().p50, Some(0));
        // Text rendering shows a placeholder, not a fake 0.
        let text = snap.to_string();
        assert!(text.contains('-'), "{text}");
    }
}
