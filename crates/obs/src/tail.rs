//! Tail sampling: bounded retention of the traces worth looking at.
//!
//! Keeping every trace would cost unbounded memory; keeping none makes
//! tail latencies unexplainable. The [`TailSampler`] splits the
//! difference with two bounded retention policies, both served from
//! preallocated slots:
//!
//! * **Slow sets** — per `(route, strategy)` key, the `slow_per_key`
//!   slowest completed traces seen so far (min-replacement, so a burst of
//!   fast requests can never evict the interesting outliers). Keying by
//!   the pair rather than the route alone guarantees each strategy keeps
//!   its own slow traces even when one strategy dominates the tail.
//! * **Uniform ring** — every `sample_every`-th trace lands in a ring
//!   buffer regardless of speed, giving `/debug/traces` a baseline of
//!   ordinary requests to compare the outliers against.
//!
//! State is striped across a fixed set of mutexes by key hash, so
//! concurrent workers completing requests on different routes rarely
//! contend. [`TailSampler::offer`] is called once per completed request:
//! after a key's first sighting (which allocates its slow set once) the
//! steady state is a hash, one short critical section, and at most one
//! `CompletedTrace` memcpy into a preallocated slot.

use crate::registry::Counter;
use crate::trace::CompletedTrace;
use crate::{names, TraceId};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Number of independently locked stripes.
const STRIPES: usize = 8;

/// Retention tunables of a [`TailSampler`].
#[derive(Debug, Clone)]
pub struct TailConfig {
    /// Slowest traces kept per `(route, strategy)` key.
    pub slow_per_key: usize,
    /// Uniform sampling period: every `sample_every`-th offered trace
    /// enters the ring. `0` disables uniform sampling.
    pub sample_every: u64,
    /// Uniform-ring capacity per stripe.
    pub ring_capacity: usize,
}

impl Default for TailConfig {
    fn default() -> Self {
        TailConfig {
            slow_per_key: 8,
            sample_every: 64,
            ring_capacity: 8,
        }
    }
}

struct KeyTail {
    route: &'static str,
    strategy: &'static str,
    slow: Vec<CompletedTrace>,
}

struct Stripe {
    keys: Vec<KeyTail>,
    ring: Vec<CompletedTrace>,
    ring_pos: usize,
    ring_used: usize,
}

/// Lock-striped retention of completed traces. See the module docs.
pub struct TailSampler {
    config: TailConfig,
    offered: AtomicU64,
    sampled: Arc<Counter>,
    stripes: [Mutex<Stripe>; STRIPES],
}

fn stripe_index(route: &str, strategy: &str) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    route.hash(&mut h);
    strategy.hash(&mut h);
    (h.finish() % STRIPES as u64) as usize
}

impl TailSampler {
    /// A sampler with preallocated ring slots.
    pub fn new(config: TailConfig) -> Self {
        let ring_capacity = config.ring_capacity;
        TailSampler {
            config,
            offered: AtomicU64::new(0),
            sampled: crate::counter(names::SERVER_TRACE_SAMPLED),
            stripes: std::array::from_fn(|_| {
                Mutex::new(Stripe {
                    keys: Vec::new(),
                    ring: vec![CompletedTrace::default(); ring_capacity],
                    ring_pos: 0,
                    ring_used: 0,
                })
            }),
        }
    }

    /// Offers one completed trace for retention. Call once per request.
    pub fn offer(&self, t: &CompletedTrace) {
        self.sampled.inc();
        // ordering: Relaxed — the counter only drives uniform sampling
        // cadence and the offered() statistic; the stripe mutex below
        // synchronizes the retained traces themselves.
        let n = self.offered.fetch_add(1, Ordering::Relaxed);
        let uniform = self.config.sample_every > 0 && n.is_multiple_of(self.config.sample_every);
        let mut stripe = self.stripes[stripe_index(t.route, t.strategy)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if uniform && self.config.ring_capacity > 0 {
            let pos = stripe.ring_pos;
            stripe.ring[pos] = *t;
            stripe.ring_pos = (pos + 1) % self.config.ring_capacity;
            stripe.ring_used = stripe.ring_used.max(pos + 1);
        }
        if self.config.slow_per_key == 0 {
            return;
        }
        match stripe
            .keys
            .iter_mut()
            .find(|k| k.route == t.route && k.strategy == t.strategy)
        {
            Some(key) => {
                if key.slow.len() < self.config.slow_per_key {
                    key.slow.push(*t);
                } else if let Some(min) = key
                    .slow
                    .iter_mut()
                    .min_by_key(|s| s.total_ns)
                    .filter(|s| s.total_ns < t.total_ns)
                {
                    *min = *t;
                }
            }
            None => {
                // First sighting of this key: the one allocation.
                let mut slow = Vec::with_capacity(self.config.slow_per_key);
                slow.push(*t);
                stripe.keys.push(KeyTail {
                    route: t.route,
                    strategy: t.strategy,
                    slow,
                });
            }
        }
    }

    /// Retained traces matching the filters, slowest first, deduplicated
    /// by trace id (a trace can sit in both a slow set and the ring).
    // goalrec-lint:allow(hot-path-alloc): debug-side introspection; name-aliases with TraceContext::snapshot
    pub fn snapshot(
        &self,
        route: Option<&str>,
        strategy: Option<&str>,
        min_total_ns: u64,
    ) -> Vec<CompletedTrace> {
        let matches = |t: &CompletedTrace| {
            t.total_ns >= min_total_ns
                && route.is_none_or(|r| t.route == r)
                && strategy.is_none_or(|s| t.strategy == s)
        };
        let mut out: Vec<CompletedTrace> = Vec::new();
        let mut seen: std::collections::HashSet<TraceId> = std::collections::HashSet::new();
        for stripe in &self.stripes {
            let stripe = stripe.lock().unwrap_or_else(PoisonError::into_inner);
            for key in &stripe.keys {
                for t in &key.slow {
                    if matches(t) && seen.insert(t.id) {
                        out.push(*t);
                    }
                }
            }
            for t in &stripe.ring[..stripe.ring_used] {
                if t.unix_ms > 0 && matches(t) && seen.insert(t.id) {
                    out.push(*t);
                }
            }
        }
        out.sort_by_key(|t| std::cmp::Reverse(t.total_ns));
        out
    }

    /// Traces currently retained (slow sets plus uniform ring).
    pub fn occupancy(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| {
                let s = s.lock().unwrap_or_else(PoisonError::into_inner);
                s.keys.iter().map(|k| k.slow.len()).sum::<usize>() + s.ring_used
            })
            .sum()
    }

    /// Total traces ever offered.
    pub fn offered(&self) -> u64 {
        // ordering: Relaxed — scrape-side read of a pure statistic.
        self.offered.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(
        id: u64,
        route: &'static str,
        strategy: &'static str,
        total_ns: u64,
    ) -> CompletedTrace {
        CompletedTrace {
            id: TraceId(id),
            route,
            strategy,
            status: 200,
            total_ns,
            unix_ms: 1,
            ..CompletedTrace::default()
        }
    }

    #[test]
    fn slow_sets_keep_the_slowest_per_key() {
        let tail = TailSampler::new(TailConfig {
            slow_per_key: 2,
            sample_every: 0,
            ring_capacity: 0,
        });
        for (id, ns) in [(1, 10), (2, 500), (3, 300), (4, 40), (5, 900)] {
            tail.offer(&trace(id, "recommend", "Breadth", ns));
        }
        let got = tail.snapshot(None, None, 0);
        let ids: Vec<u64> = got.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, vec![5, 2], "slowest first, fast ones evicted");
        assert_eq!(tail.occupancy(), 2);
        assert_eq!(tail.offered(), 5);
    }

    #[test]
    fn keys_are_route_strategy_pairs() {
        let tail = TailSampler::new(TailConfig {
            slow_per_key: 1,
            sample_every: 0,
            ring_capacity: 0,
        });
        tail.offer(&trace(1, "recommend", "Breadth", 1_000_000));
        // A much slower BestMatch trace must not evict Breadth's.
        tail.offer(&trace(2, "recommend", "BestMatch", 9_000_000));
        tail.offer(&trace(3, "healthz", "", 50));
        assert_eq!(tail.snapshot(None, None, 0).len(), 3);
        let breadth = tail.snapshot(Some("recommend"), Some("Breadth"), 0);
        assert_eq!(breadth.len(), 1);
        assert_eq!(breadth[0].id.0, 1);
    }

    #[test]
    fn filters_apply() {
        let tail = TailSampler::new(TailConfig::default());
        tail.offer(&trace(1, "recommend", "Breadth", 100));
        tail.offer(&trace(2, "recommend", "Breadth", 9_000));
        tail.offer(&trace(3, "healthz", "", 20));
        assert_eq!(tail.snapshot(Some("healthz"), None, 0).len(), 1);
        assert_eq!(tail.snapshot(None, None, 1_000).len(), 1);
        assert_eq!(tail.snapshot(Some("missing"), None, 0).len(), 0);
    }

    #[test]
    fn uniform_ring_samples_every_mth_and_dedups_against_slow() {
        let tail = TailSampler::new(TailConfig {
            slow_per_key: 1,
            sample_every: 2,
            ring_capacity: 4,
        });
        for id in 1..=6u64 {
            // Constant duration: the slow set keeps only the first.
            tail.offer(&trace(id, "recommend", "Breadth", 100));
        }
        // Offers 0,2,4 (ids 1,3,5) entered the ring; id 1 also sits in
        // the slow set and must appear once.
        let got = tail.snapshot(None, None, 0);
        let mut ids: Vec<u64> = got.iter().map(|t| t.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    #[test]
    fn concurrent_offers_do_not_lose_the_max() {
        let tail = Arc::new(TailSampler::new(TailConfig::default()));
        let handles: Vec<_> = (0..4u64)
            .map(|w| {
                let tail = Arc::clone(&tail);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        tail.offer(&trace(w * 1000 + i, "recommend", "Breadth", w * 1000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("offer thread panicked");
        }
        let got = tail.snapshot(Some("recommend"), Some("Breadth"), 0);
        assert_eq!(got[0].total_ns, 3099, "global max must be retained");
        assert_eq!(tail.offered(), 400);
    }
}
