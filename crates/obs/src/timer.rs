//! RAII span timing into nanosecond histograms.

use crate::histogram::Histogram;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Times a scope and records the elapsed nanoseconds when dropped.
///
/// ```
/// use goalrec_obs::Timer;
/// {
///     let _span = Timer::scoped("model.build.a_idx");
///     // ... work measured until end of scope ...
/// }
/// assert_eq!(goalrec_obs::snapshot().histogram("model.build.a_idx").unwrap().count, 1);
/// ```
pub struct Timer {
    hist: Option<Arc<Histogram>>,
    start: Instant,
}

impl Timer {
    /// Starts a span recording into the global registry's nanosecond
    /// histogram `name`.
    pub fn scoped(name: &str) -> Timer {
        Timer::into_histogram(crate::global().histogram_ns(name))
    }

    /// Starts a span recording into a pre-resolved histogram handle
    /// (hot paths that avoid the registry lookup).
    pub fn into_histogram(hist: Arc<Histogram>) -> Timer {
        Timer {
            hist: Some(hist),
            start: Instant::now(),
        }
    }

    /// Stops the span early, recording it and returning the elapsed time.
    pub fn stop(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        if let Some(hist) = self.hist.take() {
            hist.record_duration(elapsed);
        }
        elapsed
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(hist) = self.hist.take() {
            hist.record_duration(self.start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Registry, Unit};

    #[test]
    fn drop_records_once() {
        let r = Registry::new();
        let h = r.histogram_ns("span");
        {
            let _t = Timer::into_histogram(Arc::clone(&h));
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 1_000_000, "recorded {}ns", h.max());
        assert_eq!(h.unit(), Unit::Nanos);
    }

    #[test]
    fn stop_records_once_and_returns_elapsed() {
        let r = Registry::new();
        let h = r.histogram_ns("span");
        let t = Timer::into_histogram(Arc::clone(&h));
        let elapsed = t.stop();
        assert_eq!(h.count(), 1, "stop then drop must not double-record");
        assert!(elapsed.as_nanos() > 0);
    }
}
