//! Request-scoped tracing: a bounded, allocation-free span recorder.
//!
//! A [`TraceContext`] lives on one worker thread and is reused across
//! requests: [`TraceContext::begin`] rewinds it in place, so the steady
//! state touches no allocator — spans land in a fixed `[Span; MAX_SPANS]`
//! array and overflow is counted, not grown. Span clocks are offsets from
//! the context's monotonic start instant, which makes every span directly
//! comparable to the request's `server.latency` observation: the
//! top-level (non-child) spans of a completed trace partition the same
//! `[0, total_ns]` window that the latency histogram records.
//!
//! Span names are `&'static str` constants from [`crate::names`] — the
//! same registry discipline (and `goalrec-lint` rule) as metric names.
//!
//! Completed traces are snapshot into the `Copy` type [`CompletedTrace`]
//! so the tail sampler (see [`crate::tail`]) can retain them by memcpy
//! into preallocated ring slots.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Spans one trace can hold; later spans are dropped (and counted).
pub const MAX_SPANS: usize = 16;

/// A 64-bit trace identifier, rendered as 16 lowercase hex digits.
///
/// `0` is reserved as "no id": [`fresh_trace_id`] never returns it and
/// [`TraceId::parse_hex`] rejects it, so a zero id cannot masquerade as a
/// real inbound trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Parses the 16-hex-digit wire form (also accepts shorter hex).
    pub fn parse_hex(s: &str) -> Option<TraceId> {
        let s = s.trim();
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        match u64::from_str_radix(s, 16) {
            Ok(v) if v != 0 => Some(TraceId(v)),
            _ => None,
        }
    }

    /// The 16-hex-digit wire form (header value, JSON field).
    pub fn to_hex(self) -> String {
        // goalrec-lint:allow(hot-path-alloc): trace epilogue — renders the response header id for traced requests only
        format!("{:016x}", self.0)
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

static SEED_COUNTER: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TRACE_RNG: RefCell<StdRng> = RefCell::new(StdRng::seed_from_u64(thread_seed()));
}

fn thread_seed() -> u64 {
    // Golden-ratio stride keeps per-thread seeds far apart; the wall
    // clock decorrelates seeds across process restarts.
    // ordering: Relaxed — only the atomicity matters: each thread draws a
    // distinct stride; nothing is published through the counter.
    let stride = SEED_COUNTER
        .fetch_add(1, Ordering::Relaxed)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5bd1_e995);
    stride ^ nanos
}

/// A fresh, never-zero trace id from the calling thread's RNG.
pub fn fresh_trace_id() -> TraceId {
    TRACE_RNG.with(|rng| {
        let mut rng = rng.borrow_mut();
        loop {
            let v = rng.next_u64();
            if v != 0 {
                return TraceId(v);
            }
        }
    })
}

/// One named span: an offset window inside its trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Registered span name (a `names::SPAN_*` constant).
    pub name: &'static str,
    /// Start offset from the trace start, nanoseconds.
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
    /// Child spans subdivide a parent and are excluded from the
    /// top-level span-sum invariant.
    pub child: bool,
}

const EMPTY_SPAN: Span = Span {
    name: "",
    start_ns: 0,
    dur_ns: 0,
    child: false,
};

/// Handle returned by [`TraceContext::start_span`]; pass it back to
/// [`TraceContext::end_span`]. The sentinel value means "not recording"
/// (tracing disabled or span table full) and ends as a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanToken(u32);

impl SpanToken {
    const NONE: SpanToken = SpanToken(u32::MAX);
}

/// A reusable per-request trace recorder. See the module docs.
#[derive(Debug)]
pub struct TraceContext {
    enabled: bool,
    id: TraceId,
    started: Instant,
    route: &'static str,
    strategy: &'static str,
    status: u16,
    generation: u64,
    queue_wait_ns: u64,
    total_ns: u64,
    spans: [Span; MAX_SPANS],
    len: u32,
    dropped: u32,
}

impl TraceContext {
    /// A fresh context; `enabled = false` turns every recording call
    /// into a cheap no-op while keeping the API uniform.
    pub fn new(enabled: bool) -> Self {
        TraceContext {
            enabled,
            id: TraceId::default(),
            started: Instant::now(),
            route: "",
            strategy: "",
            status: 0,
            generation: 0,
            queue_wait_ns: 0,
            total_ns: 0,
            spans: [EMPTY_SPAN; MAX_SPANS],
            len: 0,
            dropped: 0,
        }
    }

    /// A permanently disabled context for untraced call paths.
    pub fn disabled() -> Self {
        Self::new(false)
    }

    /// Rewinds the context in place for a new request: no allocation,
    /// just field stores. `started` anchors every span offset — pass the
    /// same instant the latency histogram measures from.
    pub fn begin(&mut self, id: TraceId, started: Instant) {
        self.id = id;
        self.started = started;
        self.route = "";
        self.strategy = "";
        self.status = 0;
        self.generation = 0;
        self.queue_wait_ns = 0;
        self.total_ns = 0;
        self.len = 0;
        self.dropped = 0;
    }

    /// Whether recording calls do anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The trace id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Overrides the id (inbound `X-Goalrec-Trace` header).
    pub fn set_id(&mut self, id: TraceId) {
        self.id = id;
    }

    /// Tags the trace with its route name.
    pub fn set_route(&mut self, route: &'static str) {
        self.route = route;
    }

    /// Tags the trace with the strategy that served it.
    pub fn set_strategy(&mut self, strategy: &'static str) {
        self.strategy = strategy;
    }

    /// Tags the trace with the model generation that served it.
    pub fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Records the admission-queue wait (also kept as a named span via
    /// [`TraceContext::add_span`] by the caller).
    pub fn set_queue_wait_ns(&mut self, ns: u64) {
        self.queue_wait_ns = ns;
    }

    /// The recorded admission-queue wait, nanoseconds.
    pub fn queue_wait_ns(&self) -> u64 {
        self.queue_wait_ns
    }

    /// Nanoseconds since the trace's start instant.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Opens a top-level span clocked from now. Returns a token for
    /// [`TraceContext::end_span`]; the sentinel when not recording.
    #[inline]
    pub fn start_span(&mut self, name: &'static str) -> SpanToken {
        if !self.enabled {
            return SpanToken::NONE;
        }
        let i = self.len as usize;
        if i >= MAX_SPANS {
            self.dropped += 1;
            return SpanToken::NONE;
        }
        self.spans[i] = Span {
            name,
            start_ns: self.elapsed_ns(),
            dur_ns: 0,
            child: false,
        };
        self.len += 1;
        SpanToken(i as u32)
    }

    /// Opens a child span clocked from now: same mechanics as
    /// [`TraceContext::start_span`] but the span subdivides an enclosing
    /// parent, so it is excluded from the top-level span-sum invariant.
    #[inline]
    pub fn start_child_span(&mut self, name: &'static str) -> SpanToken {
        let token = self.start_span(name);
        if token != SpanToken::NONE {
            self.spans[token.0 as usize].child = true;
        }
        token
    }

    /// Closes a span opened by [`TraceContext::start_span`].
    #[inline]
    pub fn end_span(&mut self, token: SpanToken) {
        if token == SpanToken::NONE {
            return;
        }
        let i = token.0 as usize;
        if i < self.len as usize {
            let now = self.elapsed_ns();
            let span = &mut self.spans[i];
            span.dur_ns = now.saturating_sub(span.start_ns);
        }
    }

    /// Records a span with an explicit offset window (e.g. a phase whose
    /// boundaries were measured elsewhere, or a queue wait that ended
    /// before the context was begun).
    #[inline]
    pub fn add_span(&mut self, name: &'static str, start_ns: u64, dur_ns: u64, child: bool) {
        if !self.enabled {
            return;
        }
        let i = self.len as usize;
        if i >= MAX_SPANS {
            self.dropped += 1;
            return;
        }
        self.spans[i] = Span {
            name,
            start_ns,
            dur_ns,
            child,
        };
        self.len += 1;
    }

    /// Seals the trace: records the response status and the total
    /// duration (which it also returns, in nanoseconds).
    pub fn finish(&mut self, status: u16) -> u64 {
        self.status = status;
        self.total_ns = self.elapsed_ns();
        self.total_ns
    }

    /// The spans recorded so far.
    pub fn spans(&self) -> &[Span] {
        &self.spans[..self.len as usize]
    }

    /// A `Copy` snapshot of the finished trace, stamped with the wall
    /// clock so dumps can be ordered across processes.
    pub fn snapshot(&self) -> CompletedTrace {
        CompletedTrace {
            id: self.id,
            route: self.route,
            strategy: self.strategy,
            status: self.status,
            generation: self.generation,
            queue_wait_ns: self.queue_wait_ns,
            total_ns: self.total_ns,
            unix_ms: unix_ms(),
            spans: self.spans,
            len: self.len,
            dropped: self.dropped,
        }
    }
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// A finished trace, fixed-size and `Copy` so retention is a memcpy
/// into a preallocated slot (no allocation on the serving path).
#[derive(Debug, Clone, Copy)]
pub struct CompletedTrace {
    /// Trace id (wire form: 16 hex digits).
    pub id: TraceId,
    /// Route name ("recommend", "healthz", "reload", …).
    pub route: &'static str,
    /// Strategy that served the request; empty when not a recommend.
    pub strategy: &'static str,
    /// HTTP status of the response (0 for non-HTTP traces).
    pub status: u16,
    /// Model generation that served the request.
    pub generation: u64,
    /// Admission-queue wait, nanoseconds.
    pub queue_wait_ns: u64,
    /// Total duration, nanoseconds (same window as `server.latency`).
    pub total_ns: u64,
    /// Wall-clock completion time, milliseconds since the epoch.
    pub unix_ms: u64,
    /// The span table; only the first `len` entries are meaningful.
    pub spans: [Span; MAX_SPANS],
    /// Number of recorded spans.
    pub len: u32,
    /// Spans dropped after the table filled.
    pub dropped: u32,
}

impl Default for CompletedTrace {
    fn default() -> Self {
        CompletedTrace {
            id: TraceId::default(),
            route: "",
            strategy: "",
            status: 0,
            generation: 0,
            queue_wait_ns: 0,
            total_ns: 0,
            unix_ms: 0,
            spans: [EMPTY_SPAN; MAX_SPANS],
            len: 0,
            dropped: 0,
        }
    }
}

impl CompletedTrace {
    /// The recorded spans.
    pub fn spans(&self) -> &[Span] {
        &self.spans[..self.len as usize]
    }

    /// Sum of the top-level (non-child) span durations, nanoseconds.
    /// For a fully instrumented request this is within clock-read jitter
    /// of [`CompletedTrace::total_ns`].
    pub fn top_level_span_sum_ns(&self) -> u64 {
        self.spans()
            .iter()
            .filter(|s| !s.child)
            .map(|s| s.dur_ns)
            .fold(0u64, u64::saturating_add)
    }

    /// Whether a span with this name was recorded.
    pub fn has_span(&self, name: &str) -> bool {
        self.spans().iter().any(|s| s.name == name)
    }

    /// The trace as a JSON value for `/debug/traces` and dumps.
    pub fn to_value(&self) -> serde_json::Value {
        use serde_json::Value;
        let spans: Vec<Value> = self
            .spans()
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("name".to_owned(), Value::Str(s.name.to_owned())),
                    ("start_ns".to_owned(), Value::UInt(s.start_ns)),
                    ("dur_ns".to_owned(), Value::UInt(s.dur_ns)),
                    ("child".to_owned(), Value::Bool(s.child)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("trace".to_owned(), Value::Str(self.id.to_hex())),
            ("route".to_owned(), Value::Str(self.route.to_owned())),
            ("strategy".to_owned(), Value::Str(self.strategy.to_owned())),
            ("status".to_owned(), Value::UInt(u64::from(self.status))),
            ("generation".to_owned(), Value::UInt(self.generation)),
            ("queue_wait_ns".to_owned(), Value::UInt(self.queue_wait_ns)),
            ("total_ns".to_owned(), Value::UInt(self.total_ns)),
            ("unix_ms".to_owned(), Value::UInt(self.unix_ms)),
            (
                "dropped_spans".to_owned(),
                Value::UInt(u64::from(self.dropped)),
            ),
            ("spans".to_owned(), Value::Array(spans)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_nonzero_unique_and_roundtrip() {
        let a = fresh_trace_id();
        let b = fresh_trace_id();
        assert_ne!(a.0, 0);
        assert_ne!(a, b, "consecutive ids must differ");
        assert_eq!(a.to_hex().len(), 16);
        assert_eq!(TraceId::parse_hex(&a.to_hex()), Some(a));
        assert_eq!(TraceId::parse_hex("0000000000000000"), None);
        assert_eq!(TraceId::parse_hex(""), None);
        assert_eq!(TraceId::parse_hex("zz"), None);
        assert_eq!(TraceId::parse_hex("deadbeef"), Some(TraceId(0xdead_beef)));
    }

    #[test]
    fn spans_record_and_finish() {
        let mut t = TraceContext::new(true);
        t.begin(TraceId(7), Instant::now());
        t.set_route("recommend");
        t.set_strategy("BestMatch");
        t.set_generation(3);
        let tok = t.start_span(crate::names::SPAN_HANDLE);
        std::thread::sleep(std::time::Duration::from_millis(2));
        t.end_span(tok);
        t.add_span(crate::names::SPAN_RANK_CANDIDATES, 0, 500, true);
        let rank = t.start_child_span(crate::names::SPAN_RANK);
        t.end_span(rank);
        let total = t.finish(200);
        assert!(total > 0);
        let snap = t.snapshot();
        assert_eq!(snap.id, TraceId(7));
        assert_eq!(snap.status, 200);
        assert_eq!(snap.generation, 3);
        assert_eq!(snap.len, 3);
        assert!(snap.spans()[2].child, "start_child_span marks the span");
        assert!(snap.has_span(crate::names::SPAN_HANDLE));
        assert!(snap.spans()[0].dur_ns >= 1_000_000);
        // Child spans are excluded from the top-level sum.
        assert_eq!(snap.top_level_span_sum_ns(), snap.spans()[0].dur_ns);
        assert!(snap.total_ns >= snap.spans()[0].dur_ns);
    }

    #[test]
    fn disabled_context_is_inert() {
        let mut t = TraceContext::disabled();
        let tok = t.start_span(crate::names::SPAN_PARSE);
        t.end_span(tok);
        t.add_span(crate::names::SPAN_WRITE, 0, 9, false);
        assert_eq!(t.finish(200), t.snapshot().total_ns);
        assert_eq!(t.spans().len(), 0);
        assert_eq!(tok, SpanToken::NONE);
    }

    #[test]
    fn overflow_is_counted_not_grown() {
        let mut t = TraceContext::new(true);
        t.begin(TraceId(1), Instant::now());
        for _ in 0..MAX_SPANS + 3 {
            let tok = t.start_span(crate::names::SPAN_PARSE);
            t.end_span(tok);
        }
        assert_eq!(t.spans().len(), MAX_SPANS);
        assert_eq!(t.snapshot().dropped, 3);
    }

    #[test]
    fn begin_rewinds_in_place() {
        let mut t = TraceContext::new(true);
        t.begin(TraceId(1), Instant::now());
        t.start_span(crate::names::SPAN_PARSE);
        t.finish(500);
        t.begin(TraceId(2), Instant::now());
        assert_eq!(t.spans().len(), 0);
        assert_eq!(t.id(), TraceId(2));
        assert_eq!(t.snapshot().status, 0);
    }

    #[test]
    fn to_value_serializes_the_span_table() {
        let mut t = TraceContext::new(true);
        t.begin(TraceId(0xabc), Instant::now());
        t.set_route("recommend");
        let tok = t.start_span(crate::names::SPAN_RANK);
        t.end_span(tok);
        t.finish(200);
        let v = t.snapshot().to_value();
        assert_eq!(
            v.get("trace").and_then(|x| x.as_str()),
            Some("0000000000000abc")
        );
        assert_eq!(v.get("route").and_then(|x| x.as_str()), Some("recommend"));
        let spans = match v.get("spans") {
            Some(serde_json::Value::Array(items)) => items,
            other => panic!("spans must be an array, got {other:?}"),
        };
        assert_eq!(spans.len(), 1);
        assert_eq!(
            spans[0].get("name").and_then(|x| x.as_str()),
            Some(crate::names::SPAN_RANK)
        );
    }
}
