//! Golden-file tests for the two metric exposition formats: the console
//! text rendering (`MetricsReport`'s `Display`) and the Prometheus text
//! exposition (`Registry::render_prometheus`).
//!
//! The fixtures are deterministic (a fresh registry, hand-picked values)
//! so both renderings are asserted byte-for-byte. If a format changes on
//! purpose, update the goldens here and the README examples together.

use goalrec_obs::Registry;

/// A fresh registry with one of each metric kind plus an empty histogram
/// (the empty-percentile edge case).
fn fixture() -> Registry {
    let r = Registry::new();
    r.counter("server.requests").inc_by(5);
    r.gauge("batch.throughput_rps").set(1234.5);
    let latency = r.histogram_ns("server.latency");
    latency.record(900);
    latency.record(1_500);
    // Registered but never recorded: percentiles must render as `-`.
    let _ = r.histogram("strategy.Breadth.candidates");
    r
}

#[test]
fn text_report_golden() {
    let expected = "\
counters
  server.requests                                       5
gauges
  batch.throughput_rps                           1234.500
histograms
  name                                           count       mean        p50        p95        p99        max
  server.latency                                     2      1.2µs      1.0µs      1.5µs      1.5µs      1.5µs
  strategy.Breadth.candidates                        0          0          -          -          -          0
";
    assert_eq!(fixture().snapshot().to_string(), expected);
}

#[test]
fn prometheus_exposition_golden() {
    let expected = "\
# TYPE goalrec_server_requests counter
goalrec_server_requests 5
# TYPE goalrec_batch_throughput_rps gauge
goalrec_batch_throughput_rps 1234.5
# TYPE goalrec_server_latency histogram
goalrec_server_latency_bucket{le=\"0\"} 0
goalrec_server_latency_bucket{le=\"1\"} 0
goalrec_server_latency_bucket{le=\"3\"} 0
goalrec_server_latency_bucket{le=\"7\"} 0
goalrec_server_latency_bucket{le=\"15\"} 0
goalrec_server_latency_bucket{le=\"31\"} 0
goalrec_server_latency_bucket{le=\"63\"} 0
goalrec_server_latency_bucket{le=\"127\"} 0
goalrec_server_latency_bucket{le=\"255\"} 0
goalrec_server_latency_bucket{le=\"511\"} 0
goalrec_server_latency_bucket{le=\"1023\"} 1
goalrec_server_latency_bucket{le=\"2047\"} 2
goalrec_server_latency_bucket{le=\"+Inf\"} 2
goalrec_server_latency_sum 2400
goalrec_server_latency_count 2
# TYPE goalrec_strategy_Breadth_candidates histogram
goalrec_strategy_Breadth_candidates_bucket{le=\"0\"} 0
goalrec_strategy_Breadth_candidates_bucket{le=\"+Inf\"} 0
goalrec_strategy_Breadth_candidates_sum 0
goalrec_strategy_Breadth_candidates_count 0
";
    assert_eq!(fixture().render_prometheus(), expected);
}
