//! Property tests for the log2 histogram: bucket geometry, percentile
//! accuracy relative to exact quantiles, and lossless concurrent recording.

use goalrec_obs::{Histogram, Unit};
use proptest::prelude::*;
use std::sync::Arc;

#[test]
fn bucket_boundaries_are_monotone_and_tile_u64() {
    // Lower bounds strictly increase, each bucket's upper bound is one
    // below the next bucket's lower bound, and together they tile
    // [0, u64::MAX] with no gaps or overlaps.
    for i in 1..=64usize {
        assert!(
            Histogram::bucket_lower(i) > Histogram::bucket_lower(i - 1),
            "lower bounds not strictly increasing at bucket {i}"
        );
        assert!(
            Histogram::bucket_upper(i) >= Histogram::bucket_lower(i),
            "bucket {i} is empty"
        );
        assert_eq!(
            Histogram::bucket_upper(i - 1).wrapping_add(1),
            Histogram::bucket_lower(i),
            "gap or overlap between buckets {} and {i}",
            i - 1
        );
    }
    assert_eq!(Histogram::bucket_lower(0), 0);
    assert_eq!(Histogram::bucket_upper(64), u64::MAX);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn values_land_in_their_bucket(v in 0u64..=u64::MAX) {
        let i = Histogram::bucket_index(v);
        prop_assert!(Histogram::bucket_lower(i) <= v);
        prop_assert!(v <= Histogram::bucket_upper(i));
    }

    #[test]
    fn percentiles_within_one_bucket_of_exact_quantiles(
        mut values in proptest::collection::vec(0u64..1_000_000, 1..400),
        q_permille in 10u32..=1000,
    ) {
        let q = q_permille as f64 / 1000.0;
        let h = Histogram::new(Unit::Count);
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        // Exact nearest-rank quantile over the raw values.
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];
        let estimate = h.quantile(q);
        let (be, bx) = (Histogram::bucket_index(estimate), Histogram::bucket_index(exact));
        prop_assert!(
            be.abs_diff(bx) <= 1,
            "q={q}: estimate {estimate} (bucket {be}) vs exact {exact} (bucket {bx})"
        );
    }

    #[test]
    fn count_sum_min_max_match_reference(values in proptest::collection::vec(0u64..10_000, 1..200)) {
        let h = Histogram::new(Unit::Count);
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
    }
}

#[test]
fn concurrent_recording_loses_no_counts() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 50_000;
    let h = Arc::new(Histogram::new(Unit::Nanos));
    std::thread::scope(|s| {
        for t in 0..THREADS as u64 {
            let h = Arc::clone(&h);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Distinct per-thread value streams across many buckets.
                    h.record(t * 1_000 + (i % 17) * (i % 1021));
                }
            });
        }
    });
    assert_eq!(h.count(), THREADS as u64 * PER_THREAD);
    // Replaying the same values sequentially must produce identical state:
    // no increment was lost or double-counted in any bucket.
    let reference = Histogram::new(Unit::Nanos);
    for t in 0..THREADS as u64 {
        for i in 0..PER_THREAD {
            reference.record(t * 1_000 + (i % 17) * (i % 1021));
        }
    }
    assert_eq!(h.sum(), reference.sum());
    assert_eq!(h.min(), reference.min());
    assert_eq!(h.max(), reference.max());
    for q in [0.5, 0.95, 0.99] {
        assert_eq!(
            h.quantile(q),
            reference.quantile(q),
            "quantile {q} diverged"
        );
    }
}
