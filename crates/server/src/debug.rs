//! The `/debug` introspection surface: per-worker in-flight request
//! slots, readable without stopping the world.
//!
//! Each worker registers one [`InflightSlot`] at startup and updates it
//! with plain atomic stores as a request moves through parse → handle →
//! write; `GET /debug/requests` walks the slots and reports every active
//! request's trace id, age and current span. The write side is
//! allocation-free and lock-free — the only lock guards the (cold) slot
//! list, taken at worker registration and snapshot time.

use goalrec_obs::{names, TraceId};
use serde_json::Value;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Request phases a slot can report.
pub(crate) const STAGE_IDLE: u8 = 0;
/// Reading and parsing the request head/body.
pub(crate) const STAGE_PARSE: u8 = 1;
/// Inside the router (including the ranking pass).
pub(crate) const STAGE_HANDLE: u8 = 2;
/// Serializing and writing the response.
pub(crate) const STAGE_WRITE: u8 = 3;

fn stage_name(stage: u8) -> &'static str {
    match stage {
        STAGE_PARSE => names::SPAN_PARSE,
        STAGE_HANDLE => names::SPAN_HANDLE,
        STAGE_WRITE => names::SPAN_WRITE,
        _ => "idle",
    }
}

/// One worker's current request, written with relaxed atomic stores on
/// the hot path and read by `/debug/requests` snapshots.
pub struct InflightSlot {
    worker: u64,
    active: AtomicBool,
    trace_id: AtomicU64,
    started_us: AtomicU64,
    stage: AtomicU8,
}

impl InflightSlot {
    /// Marks the slot active for a new request (entering the parse phase).
    /// `started_us` is the request start in the owning registry's time
    /// base (see [`InflightRegistry::offset_us`]).
    pub(crate) fn begin(&self, id: TraceId, started_us: u64) {
        // ordering: the payload fields are Relaxed and published by the
        // Release store of `active`, which pairs with the Acquire load in
        // snapshot_rows — a snapshot that observes active=true also
        // observes the trace id, start time and stage written before it.
        self.trace_id.store(id.0, Ordering::Relaxed);
        self.started_us.store(started_us, Ordering::Relaxed); // ordering: as above
        self.stage.store(STAGE_PARSE, Ordering::Relaxed); // ordering: as above
        self.active.store(true, Ordering::Release); // ordering: as above
    }

    /// Re-stamps the trace id (an inbound `X-Goalrec-Trace` header landed
    /// after the slot was begun).
    pub(crate) fn set_trace(&self, id: TraceId) {
        // ordering: Relaxed — a mid-request re-stamp; a snapshot racing
        // with it may report either id, both of which were current.
        self.trace_id.store(id.0, Ordering::Relaxed);
    }

    /// Moves the request to a new phase (one of the `STAGE_*` constants).
    pub(crate) fn set_stage(&self, stage: u8) {
        // ordering: Relaxed — stage is advisory; a snapshot racing with a
        // transition reports the adjacent phase, which is equally true.
        self.stage.store(stage, Ordering::Relaxed);
    }

    /// Marks the slot idle again.
    pub(crate) fn end(&self) {
        // ordering: Release so a snapshot that still sees active=true saw
        // payload fields from this request, not a later reuse; the stage
        // reset below is advisory (Relaxed) — an idle slot is filtered out
        // by the active check before stage is read.
        self.active.store(false, Ordering::Release);
        self.stage.store(STAGE_IDLE, Ordering::Relaxed); // ordering: as above
    }
}

/// All workers' slots plus the common time epoch their ages are measured
/// against.
pub struct InflightRegistry {
    epoch: Instant,
    slots: Mutex<Vec<Arc<InflightSlot>>>,
}

impl Default for InflightRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl InflightRegistry {
    /// An empty registry; its construction time is the age epoch.
    pub(crate) fn new() -> Self {
        InflightRegistry {
            epoch: Instant::now(),
            slots: Mutex::new(Vec::new()),
        }
    }

    /// Microseconds from the registry epoch to `t` — the time base slot
    /// ages are reported in.
    pub(crate) fn offset_us(&self, t: Instant) -> u64 {
        u64::try_from(t.saturating_duration_since(self.epoch).as_micros()).unwrap_or(u64::MAX)
    }

    /// Registers one worker's slot.
    // goalrec-lint:allow(hot-path-alloc): runs once per worker thread at startup, not per request
    pub(crate) fn register(&self, worker: usize) -> Arc<InflightSlot> {
        let slot = Arc::new(InflightSlot {
            worker: worker as u64,
            active: AtomicBool::new(false),
            trace_id: AtomicU64::new(0),
            started_us: AtomicU64::new(0),
            stage: AtomicU8::new(STAGE_IDLE),
        });
        self.slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Arc::clone(&slot));
        slot
    }

    /// A point-in-time JSON row per active request: trace id, worker,
    /// age and the span the request is currently inside.
    pub(crate) fn snapshot_rows(&self) -> Vec<Value> {
        let now_us = self.offset_us(Instant::now());
        let slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        slots
            .iter()
            // ordering: Acquire pairs with the Release store in begin —
            // observing active=true makes the Relaxed payload loads below
            // read values from this request (or newer re-stamps).
            .filter(|slot| slot.active.load(Ordering::Acquire))
            .map(|slot| {
                let started = slot.started_us.load(Ordering::Relaxed); // ordering: as above
                serde_json::json!({
                    // ordering: as above
                    "trace": TraceId(slot.trace_id.load(Ordering::Relaxed)).to_hex(),
                    "worker": slot.worker,
                    "age_ms": now_us.saturating_sub(started) / 1_000,
                    // ordering: as above
                    "span": stage_name(slot.stage.load(Ordering::Relaxed)),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_lifecycle_shows_up_in_snapshots() {
        let reg = InflightRegistry::new();
        let slot = reg.register(3);
        assert!(reg.snapshot_rows().is_empty());

        slot.begin(TraceId(0xabc), reg.offset_us(Instant::now()));
        slot.set_stage(STAGE_HANDLE);
        let rows = reg.snapshot_rows();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(
            row.get("trace").and_then(|v| v.as_str()),
            Some("0000000000000abc")
        );
        assert_eq!(row.get("worker").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(
            row.get("span").and_then(|v| v.as_str()),
            Some(names::SPAN_HANDLE)
        );
        assert!(row.get("age_ms").and_then(|v| v.as_u64()).is_some());

        slot.set_trace(TraceId(0xdef));
        assert_eq!(
            reg.snapshot_rows()[0].get("trace").and_then(|v| v.as_str()),
            Some("0000000000000def".to_owned()).as_deref()
        );

        slot.end();
        assert!(reg.snapshot_rows().is_empty());
    }

    #[test]
    fn stage_names_come_from_the_registry() {
        assert_eq!(stage_name(STAGE_PARSE), names::SPAN_PARSE);
        assert_eq!(stage_name(STAGE_HANDLE), names::SPAN_HANDLE);
        assert_eq!(stage_name(STAGE_WRITE), names::SPAN_WRITE);
        assert_eq!(stage_name(STAGE_IDLE), "idle");
        assert_eq!(stage_name(99), "idle");
    }
}
