//! The typed error surface of the server.
//!
//! Everything that can go wrong — transport faults, protocol violations,
//! admission rejections, bad request payloads — is a [`ServerError`]
//! variant. The `goalrec-lint` `no-panic-paths` rule holds this crate to
//! the same invariant as the model crates: a malformed request or a broken
//! socket must never abort the process. [`ServerError::status`] maps each
//! variant to the HTTP status it is answered with; transport-level faults
//! map to `None` because no response can reach the peer anymore.

use std::fmt;

/// Any failure in the serving path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The listener could not be bound.
    Bind {
        /// Address that was requested.
        addr: String,
        /// OS-level detail.
        detail: String,
    },
    /// A socket operation failed mid-connection.
    Io {
        /// What the server was doing.
        context: &'static str,
        /// OS-level detail.
        detail: String,
    },
    /// The peer closed the connection (or aborted mid-request).
    ConnectionClosed,
    /// The per-request deadline expired before a response was produced.
    Timeout,
    /// The request violates HTTP/1.1 framing or carries an invalid payload.
    BadRequest(String),
    /// The request line exceeded the configured limit.
    UriTooLong(usize),
    /// The header block exceeded the configured limit.
    HeadersTooLarge(usize),
    /// The declared body length exceeded the configured limit.
    BodyTooLarge(usize),
    /// The admission queue was full; the connection was turned away.
    QueueFull,
    /// No route matches the request path.
    NotFound(String),
    /// The route exists but not for this method.
    MethodNotAllowed {
        /// Request path.
        path: String,
        /// Methods the route accepts.
        allowed: &'static str,
    },
    /// An append body staged more implementations than the server admits
    /// in one request.
    AppendTooLarge {
        /// Implementations in the rejected body.
        entries: usize,
        /// The configured per-request cap.
        max: usize,
    },
    /// The request named a strategy the server does not serve.
    UnknownStrategy(String),
    /// The recommendation core rejected the request (unknown ids, …).
    Recommend(goalrec_core::Error),
    /// A hot reload attempt failed; the previous model keeps serving.
    ReloadFailed(String),
    /// A bug on the server side.
    Internal(String),
}

impl ServerError {
    /// The HTTP status this error is answered with, or `None` when the
    /// transport is gone and no answer can be written.
    pub fn status(&self) -> Option<u16> {
        match self {
            ServerError::Bind { .. } | ServerError::Io { .. } | ServerError::ConnectionClosed => {
                None
            }
            ServerError::Timeout => Some(408),
            ServerError::BadRequest(_)
            | ServerError::UnknownStrategy(_)
            | ServerError::Recommend(_) => Some(400),
            ServerError::UriTooLong(_) => Some(414),
            ServerError::HeadersTooLarge(_) => Some(431),
            ServerError::BodyTooLarge(_) | ServerError::AppendTooLarge { .. } => Some(413),
            ServerError::QueueFull => Some(503),
            ServerError::NotFound(_) => Some(404),
            ServerError::MethodNotAllowed { .. } => Some(405),
            ServerError::ReloadFailed(_) => Some(500),
            ServerError::Internal(_) => Some(500),
        }
    }

    /// Maps an I/O error raised while touching a connection.
    pub fn from_io(context: &'static str, e: &std::io::Error) -> Self {
        use std::io::ErrorKind::*;
        match e.kind() {
            TimedOut | WouldBlock => ServerError::Timeout,
            UnexpectedEof | ConnectionReset | ConnectionAborted | BrokenPipe => {
                ServerError::ConnectionClosed
            }
            _ => ServerError::Io {
                context,
                // goalrec-lint:allow(hot-path-alloc): IO error path — the detail string is built only on failure
                detail: e.to_string(),
            },
        }
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Bind { addr, detail } => write!(f, "cannot bind {addr}: {detail}"),
            ServerError::Io { context, detail } => write!(f, "i/o error while {context}: {detail}"),
            ServerError::ConnectionClosed => write!(f, "connection closed by peer"),
            ServerError::Timeout => write!(f, "request deadline expired"),
            ServerError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServerError::UriTooLong(max) => {
                write!(f, "request line exceeds the {max}-byte limit")
            }
            ServerError::HeadersTooLarge(max) => {
                write!(f, "header block exceeds the {max}-byte limit")
            }
            ServerError::BodyTooLarge(max) => write!(f, "body exceeds the {max}-byte limit"),
            ServerError::AppendTooLarge { entries, max } => write!(
                f,
                "append stages {entries} implementations, above the {max}-per-request cap; \
                 split the batch"
            ),
            ServerError::QueueFull => write!(f, "admission queue full, try again later"),
            ServerError::NotFound(path) => write!(f, "no route for {path}"),
            ServerError::MethodNotAllowed { path, allowed } => {
                write!(f, "{path} only accepts {allowed}")
            }
            ServerError::UnknownStrategy(name) => write!(
                f,
                "unknown strategy '{name}' (expected breadth | best-match | focus-cmp | focus-cl)"
            ),
            ServerError::Recommend(e) => write!(f, "recommendation rejected: {e}"),
            ServerError::ReloadFailed(msg) => {
                write!(f, "reload failed (previous model keeps serving): {msg}")
            }
            ServerError::Internal(msg) => write!(f, "internal server error: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<goalrec_core::Error> for ServerError {
    fn from(e: goalrec_core::Error) -> Self {
        ServerError::Recommend(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_mapping_covers_the_protocol_errors() {
        assert_eq!(ServerError::Timeout.status(), Some(408));
        assert_eq!(ServerError::QueueFull.status(), Some(503));
        assert_eq!(ServerError::BadRequest("x".into()).status(), Some(400));
        assert_eq!(ServerError::BodyTooLarge(1).status(), Some(413));
        assert_eq!(
            ServerError::AppendTooLarge { entries: 9, max: 4 }.status(),
            Some(413)
        );
        assert_eq!(ServerError::UriTooLong(1).status(), Some(414));
        assert_eq!(ServerError::HeadersTooLarge(1).status(), Some(431));
        assert_eq!(ServerError::NotFound("/x".into()).status(), Some(404));
        assert_eq!(
            ServerError::MethodNotAllowed {
                path: "/x".into(),
                allowed: "GET"
            }
            .status(),
            Some(405)
        );
        assert_eq!(ServerError::Internal("bug".into()).status(), Some(500));
        assert_eq!(ServerError::ReloadFailed("torn".into()).status(), Some(500));
        assert_eq!(ServerError::ConnectionClosed.status(), None);
    }

    #[test]
    fn io_errors_classify_by_kind() {
        use std::io::{Error, ErrorKind};
        assert_eq!(
            ServerError::from_io("reading", &Error::from(ErrorKind::TimedOut)),
            ServerError::Timeout
        );
        assert_eq!(
            ServerError::from_io("reading", &Error::from(ErrorKind::BrokenPipe)),
            ServerError::ConnectionClosed
        );
        assert!(matches!(
            ServerError::from_io("reading", &Error::from(ErrorKind::PermissionDenied)),
            ServerError::Io { .. }
        ));
    }
}
