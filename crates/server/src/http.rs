//! A minimal, allocation-conscious HTTP/1.1 request parser and response
//! writer over any [`Read`]/[`Write`] transport.
//!
//! The parser is deliberately small: request line + headers + an optional
//! `Content-Length` body, which is all the `goalrec-serve` API needs. It
//! is incremental and keeps its own buffer, so pipelined keep-alive
//! requests (several requests sent in one TCP segment) parse back-to-back
//! without touching the socket in between. Every framing violation is a
//! typed [`ServerError`], never a panic, and every dimension of a request
//! — line length, header block size, header count, body size — is capped
//! by [`Limits`].

use crate::error::ServerError;
use std::io::{Read, Write};

/// Hard caps applied while parsing one request.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Longest accepted request line (method + target + version), bytes.
    pub max_request_line: usize,
    /// Largest accepted header block, bytes.
    pub max_header_bytes: usize,
    /// Most accepted header fields.
    pub max_headers: usize,
    /// Largest accepted `Content-Length` body, bytes.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 * 1024,
            max_header_bytes: 16 * 1024,
            max_headers: 64,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-case method token as sent (`GET`, `POST`, …).
    pub method: String,
    /// Path component of the target, without the query string.
    pub path: String,
    /// Raw query string after `?`, when present.
    pub query: Option<String>,
    /// Header fields with lower-cased names, in wire order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection may carry another request after this one.
    pub keep_alive: bool,
}

impl Request {
    /// First value of a header by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Buffered incremental reader feeding the parser.
///
/// Bytes read past the end of one request stay buffered for the next, so
/// a pipelined burst is served without extra syscalls.
pub struct HttpReader<R> {
    inner: R,
    buf: Vec<u8>,
    pos: usize,
}

const FILL_CHUNK: usize = 8 * 1024;

impl<R: Read> HttpReader<R> {
    /// Wraps a transport.
    pub fn new(inner: R) -> Self {
        HttpReader {
            inner,
            buf: Vec::with_capacity(FILL_CHUNK),
            pos: 0,
        }
    }

    /// The wrapped transport.
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }

    /// Whether unparsed bytes are already buffered.
    pub fn has_buffered(&self) -> bool {
        self.pos < self.buf.len()
    }

    /// Reads once from the transport into the buffer. Returns the number
    /// of new bytes; `0` means the peer closed its write side.
    pub fn fill_once(&mut self) -> Result<usize, ServerError> {
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        let old = self.buf.len();
        self.buf.resize(old + FILL_CHUNK, 0);
        let r = self.inner.read(&mut self.buf[old..]);
        match r {
            Ok(n) => {
                self.buf.truncate(old + n);
                Ok(n)
            }
            Err(e) => {
                self.buf.truncate(old);
                match e.kind() {
                    std::io::ErrorKind::Interrupted => Ok(self.fill_once()?),
                    _ => Err(ServerError::from_io("reading request", &e)),
                }
            }
        }
    }

    /// Consumes one `\r\n`- (or `\n`-) terminated line, filling as needed.
    /// `too_long` is raised when more than `max` bytes arrive without a
    /// newline.
    fn take_line(
        &mut self,
        max: usize,
        too_long: impl Fn(usize) -> ServerError,
    ) -> Result<String, ServerError> {
        loop {
            if let Some(off) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                if off > max {
                    return Err(too_long(max));
                }
                let end = self.pos + off;
                let mut line = &self.buf[self.pos..end];
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                let text = String::from_utf8_lossy(line).into_owned();
                self.pos = end + 1;
                return Ok(text);
            }
            if self.buf.len() - self.pos > max {
                return Err(too_long(max));
            }
            if self.fill_once()? == 0 {
                return Err(ServerError::ConnectionClosed);
            }
        }
    }

    /// Consumes exactly `n` body bytes, filling as needed.
    fn take_exact(&mut self, n: usize) -> Result<Vec<u8>, ServerError> {
        while self.buf.len() - self.pos < n {
            if self.fill_once()? == 0 {
                return Err(ServerError::ConnectionClosed);
            }
        }
        let out = self.buf[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Ok(out)
    }
}

/// Parses the next request off the wire.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly between
/// requests — the normal end of a keep-alive session.
pub fn read_request<R: Read>(
    reader: &mut HttpReader<R>,
    limits: &Limits,
) -> Result<Option<Request>, ServerError> {
    // Clean close detection: EOF before the first byte of a request.
    if !reader.has_buffered() && reader.fill_once()? == 0 {
        return Ok(None);
    }

    let line = reader.take_line(limits.max_request_line, ServerError::UriTooLong)?;
    let mut parts = line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m.to_owned(), t.to_owned(), v.to_owned()),
        _ => {
            // goalrec-lint:allow(hot-path-alloc): reject path — message built only for malformed requests
            return Err(ServerError::BadRequest(format!(
                "malformed request line '{line}'"
            )));
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        // goalrec-lint:allow(hot-path-alloc): reject path — message built only for malformed requests
        return Err(ServerError::BadRequest(format!(
            "unsupported protocol version '{version}'"
        )));
    }

    // goalrec-lint:allow(hot-path-alloc): request decode — the header vector is the request's own storage
    let mut headers: Vec<(String, String)> = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let line = reader.take_line(limits.max_header_bytes, ServerError::HeadersTooLarge)?;
        if line.is_empty() {
            break;
        }
        header_bytes += line.len() + 2;
        if header_bytes > limits.max_header_bytes || headers.len() >= limits.max_headers {
            return Err(ServerError::HeadersTooLarge(limits.max_header_bytes));
        }
        let Some((name, value)) = line.split_once(':') else {
            // goalrec-lint:allow(hot-path-alloc): reject path — message built only for malformed requests
            return Err(ServerError::BadRequest(format!(
                "malformed header line '{line}'"
            )));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
    }

    let mut request = Request {
        method,
        // goalrec-lint:allow(hot-path-alloc): zero-capacity placeholders — String::new/Vec::new defer allocation
        path: String::new(),
        query: None,
        headers,
        // goalrec-lint:allow(hot-path-alloc): zero-capacity placeholder, replaced by take_exact's buffer
        body: Vec::new(),
        keep_alive: version == "HTTP/1.1",
    };
    match target.split_once('?') {
        Some((p, q)) => {
            request.path = p.to_owned();
            request.query = Some(q.to_owned());
        }
        None => request.path = target,
    }

    match request.header("connection").map(str::to_ascii_lowercase) {
        Some(c) if c == "close" => request.keep_alive = false,
        Some(c) if c == "keep-alive" => request.keep_alive = true,
        _ => {}
    }

    if request
        .header("transfer-encoding")
        .is_some_and(|t| !t.eq_ignore_ascii_case("identity"))
    {
        return Err(ServerError::BadRequest(
            "transfer-encoding is not supported; send a Content-Length body".to_owned(),
        ));
    }
    if let Some(raw) = request.header("content-length") {
        let len: usize = raw
            .parse()
            // goalrec-lint:allow(hot-path-alloc): reject path — message built only for malformed requests
            .map_err(|_| ServerError::BadRequest(format!("invalid Content-Length '{raw}'")))?;
        if len > limits.max_body_bytes {
            return Err(ServerError::BodyTooLarge(limits.max_body_bytes));
        }
        request.body = reader.take_exact(len)?;
    }
    Ok(Some(request))
}

/// Standard reason phrase for the statuses the server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        414 => "URI Too Long",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// One response ready to serialize.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Additional headers (name, value).
    pub extra_headers: Vec<(&'static str, String)>,
    /// Forces `Connection: close` regardless of the request.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            // goalrec-lint:allow(hot-path-alloc): zero-capacity placeholder — allocates only if headers are added
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// The JSON error envelope for a failed request.
    pub fn from_error(err: &ServerError) -> Option<Self> {
        let status = err.status()?;
        let doc = serde_json::json!({
            // goalrec-lint:allow(hot-path-alloc): error path — the envelope renders only for failed requests
            "error": err.to_string(),
            "status": status,
        });
        // goalrec-lint:allow(hot-path-alloc): error path — the envelope renders only for failed requests
        let mut resp = Response::json(status, doc.to_string());
        if status == 503 {
            resp.extra_headers.push(("retry-after", "1".to_owned()));
        }
        // Framing errors poison the byte stream; never reuse the socket.
        if matches!(status, 400 | 408 | 413 | 414 | 431 | 503) {
            resp.close = true;
        }
        Some(resp)
    }

    /// Serializes the response. `keep_alive` reflects the request side;
    /// `close: true` overrides it.
    pub fn write_to<W: Write>(&self, w: &mut W, keep_alive: bool) -> Result<(), ServerError> {
        let alive = keep_alive && !self.close;
        // goalrec-lint:allow(hot-path-alloc): response framing — the head string is the per-response write buffer
        let head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if alive { "keep-alive" } else { "close" },
        );
        let mut out = head.into_bytes();
        for (name, value) in &self.extra_headers {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(value.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        w.write_all(&out)
            .and_then(|()| w.flush())
            .map_err(|e| ServerError::from_io("writing response", &e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_one(bytes: &[u8]) -> Result<Option<Request>, ServerError> {
        let mut r = HttpReader::new(bytes);
        read_request(&mut r, &Limits::default())
    }

    #[test]
    fn parses_a_minimal_get() {
        let req = parse_one(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.query, None);
        assert!(req.keep_alive);
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_query_body_and_connection_close() {
        let req = parse_one(
            b"POST /v1/recommend?debug=1 HTTP/1.1\r\nContent-Length: 4\r\nConnection: close\r\n\r\nabcd",
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.path, "/v1/recommend");
        assert_eq!(req.query.as_deref(), Some("debug=1"));
        assert_eq!(req.body, b"abcd");
        assert!(!req.keep_alive);
    }

    #[test]
    fn http_1_0_defaults_to_close() {
        let req = parse_one(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
        let req = parse_one(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn clean_eof_yields_none() {
        assert!(parse_one(b"").unwrap().is_none());
    }

    #[test]
    fn malformed_request_lines_are_bad_requests() {
        for raw in [
            &b"GET\r\n\r\n"[..],
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x SPDY/9\r\n\r\n",
        ] {
            assert!(
                matches!(parse_one(raw), Err(ServerError::BadRequest(_))),
                "{raw:?} must be rejected"
            );
        }
    }

    #[test]
    fn header_without_colon_is_rejected() {
        assert!(matches!(
            parse_one(b"GET / HTTP/1.1\r\nnot-a-header\r\n\r\n"),
            Err(ServerError::BadRequest(_))
        ));
    }

    #[test]
    fn oversized_request_line_and_headers_are_capped() {
        let limits = Limits {
            max_request_line: 64,
            max_header_bytes: 64,
            max_headers: 4,
            max_body_bytes: 64,
        };
        let long_line = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(200));
        let mut r = HttpReader::new(long_line.as_bytes());
        assert!(matches!(
            read_request(&mut r, &limits),
            Err(ServerError::UriTooLong(64))
        ));

        let fat_headers = format!("GET / HTTP/1.1\r\nbig: {}\r\n\r\n", "y".repeat(200));
        let mut r = HttpReader::new(fat_headers.as_bytes());
        assert!(matches!(
            read_request(&mut r, &limits),
            Err(ServerError::HeadersTooLarge(64))
        ));

        let many = "a: 1\r\nb: 2\r\nc: 3\r\nd: 4\r\ne: 5\r\n";
        let raw = format!("GET / HTTP/1.1\r\n{many}\r\n");
        let mut r = HttpReader::new(raw.as_bytes());
        assert!(matches!(
            read_request(&mut r, &limits),
            Err(ServerError::HeadersTooLarge(64))
        ));
    }

    #[test]
    fn bad_and_oversized_content_length() {
        assert!(matches!(
            parse_one(b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            Err(ServerError::BadRequest(_))
        ));
        assert!(matches!(
            parse_one(b"POST / HTTP/1.1\r\nContent-Length: -4\r\n\r\n"),
            Err(ServerError::BadRequest(_))
        ));
        let limits = Limits {
            max_body_bytes: 8,
            ..Limits::default()
        };
        let mut r = HttpReader::new(&b"POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\n"[..]);
        assert!(matches!(
            read_request(&mut r, &limits),
            Err(ServerError::BodyTooLarge(8))
        ));
    }

    #[test]
    fn chunked_transfer_encoding_is_rejected() {
        assert!(matches!(
            parse_one(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(ServerError::BadRequest(_))
        ));
    }

    #[test]
    fn truncated_request_reports_closed_connection() {
        assert!(matches!(
            parse_one(b"GET / HTTP/1.1\r\nhost: x"),
            Err(ServerError::ConnectionClosed)
        ));
        assert!(matches!(
            parse_one(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(ServerError::ConnectionClosed)
        ));
    }

    #[test]
    fn pipelined_keep_alive_requests_parse_back_to_back() {
        let wire = b"GET /healthz HTTP/1.1\r\n\r\nPOST /v1/recommend HTTP/1.1\r\ncontent-length: 2\r\n\r\nhiGET /metrics HTTP/1.1\r\nconnection: close\r\n\r\n";
        let mut r = HttpReader::new(&wire[..]);
        let limits = Limits::default();
        let a = read_request(&mut r, &limits).unwrap().unwrap();
        assert_eq!(a.path, "/healthz");
        assert!(r.has_buffered(), "second request must already be buffered");
        let b = read_request(&mut r, &limits).unwrap().unwrap();
        assert_eq!(b.path, "/v1/recommend");
        assert_eq!(b.body, b"hi");
        let c = read_request(&mut r, &limits).unwrap().unwrap();
        assert_eq!(c.path, "/metrics");
        assert!(!c.keep_alive);
        assert!(read_request(&mut r, &limits).unwrap().is_none());
    }

    #[test]
    fn responses_serialize_with_framing_headers() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".to_owned())
            .write_to(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn error_responses_carry_status_and_retry_after() {
        let resp = Response::from_error(&ServerError::QueueFull).unwrap();
        assert_eq!(resp.status, 503);
        assert!(resp.close);
        assert!(resp
            .extra_headers
            .iter()
            .any(|(n, v)| *n == "retry-after" && v == "1"));
        let mut out = Vec::new();
        resp.write_to(&mut out, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("connection: close\r\n"), "{text}");
        // Transport-level faults produce no response at all.
        assert!(Response::from_error(&ServerError::ConnectionClosed).is_none());
    }

    #[test]
    fn request_needs_eq_for_tests() {
        // `read_request` result comparison above relies on Option<Request>
        // equality only through `is_none`; keep a direct parse sanity here.
        let req = parse_one(b"GET / HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.path, "/");
    }
}
