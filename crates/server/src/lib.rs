//! # goalrec-server
//!
//! A hand-rolled, std-only HTTP/1.1 serving layer for the goal-based
//! recommender — the long-lived counterpart to the one-shot CLI. The
//! design is the classic bounded-queue pipeline:
//!
//! ```text
//!           accept loop            bounded MPMC queue         N workers
//!   TCP ──▶ nonblocking accept ──▶ [Conn|Conn|Conn|…] ──▶ parse → route → write
//!              │ queue full?                                   │
//!              └──▶ 503 + Retry-After (admission control)      └──▶ Arc<GoalModel>
//! ```
//!
//! * **Admission control** — the queue capacity bounds accepted-but-unserved
//!   connections; beyond it the accept loop answers `503` immediately
//!   instead of letting latency collapse.
//! * **Deadlines** — each request carries a deadline (first request: from
//!   accept, so queue wait counts); expiry answers `408`.
//! * **Graceful shutdown** — on `SIGTERM`/`SIGINT` (or a programmatic
//!   [`ServerHandle::shutdown`]) the accept loop drains the OS backlog,
//!   closes the queue, and the workers finish every admitted request
//!   before exiting. No admitted request is dropped.
//!
//! Everything is instrumented through `goalrec-obs` (`server.*` metrics)
//! and every failure is a typed [`ServerError`] — the crate is held to the
//! `goalrec-lint` `no-panic-paths` invariant like the model crates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod debug;
pub mod error;
pub mod http;
mod pool;
pub mod queue;
pub mod reload;
pub mod router;
pub mod shards;
pub mod shutdown;

pub use error::ServerError;
pub use goalrec_shard::PartitionMode;
pub use http::{Limits, Request, Response};
pub use reload::{ReloadHandle, StateCell};
pub use router::{AppState, ServeCtx, WorkerArena, STRATEGY_NAMES};
pub use shards::{ShardArena, ShardSet, ShardState};
pub use shutdown::Shutdown;

use goalrec_obs as obs;
use pool::{Conn, ConnPolicy, ServerMetrics};
use queue::{Bounded, TryPush};
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Interface to bind.
    pub addr: String,
    /// Port to bind; `0` asks the OS for an ephemeral port.
    pub port: u16,
    /// Worker threads draining the admission queue.
    pub workers: usize,
    /// Admission-queue capacity (see the crate docs).
    pub queue_depth: usize,
    /// Per-request deadline; expiry answers `408`.
    pub deadline: Duration,
    /// How long an idle keep-alive connection may hold a worker.
    pub idle_timeout: Duration,
    /// Request parsing caps.
    pub limits: Limits,
    /// The library file the server was started from, when there is one.
    /// It is the default target of `SIGHUP` and path-less
    /// `POST /v1/admin/reload` requests; `None` (e.g. when serving a
    /// synthetic in-memory library) makes those reloads require an
    /// explicit path.
    pub library_path: Option<PathBuf>,
    /// Whether workers record request-scoped traces. When off, the whole
    /// tracing layer collapses to a no-op (`/debug/traces` serves an
    /// empty set, no `X-Goalrec-Trace` header is emitted).
    pub trace_enabled: bool,
    /// Uniform-sampling period of the tail sampler: 1 in N completed
    /// traces is kept regardless of speed (slow outliers are always
    /// kept). Clamped to at least 1.
    pub trace_sample_every: u64,
    /// Emit a single-line JSON access-log record for every Nth traced
    /// request per worker; `0` disables the access log entirely.
    pub access_log_every: u64,
    /// Number of shards to partition the goal library into; `0` (the
    /// default) serves the classic single-model path. Positive values are
    /// clamped to `goalrec-obs`'s named-shard budget (16) and route every
    /// recommend through the scatter-gather merge — bit-identical
    /// results, per-shard metrics/spans/reload.
    pub shards: usize,
    /// How goals are placed onto shards when `shards > 0`.
    pub shard_mode: PartitionMode,
    /// Deadline for `/v1/admin/*` requests. Admin work (reload, append,
    /// compaction) legitimately takes longer than a recommend, so it gets
    /// its own, longer budget instead of inheriting `deadline`.
    pub admin_deadline: Duration,
    /// Most implementations one `POST /v1/admin/library/append` body may
    /// stage; larger batches are answered `413`.
    pub append_max_entries: usize,
    /// Watch the startup library file for mtime changes and hot-reload it
    /// automatically (debounced polling; no OS-specific watcher APIs).
    pub watch: bool,
    /// Auto-compact the live delta once it holds this many staged
    /// implementations; `0` disables the count trigger.
    pub compact_threshold: usize,
    /// Auto-compact once the oldest staged implementation is this old;
    /// zero disables the age trigger.
    pub compact_max_age: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1".to_owned(),
            port: 7878,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
                .min(8),
            queue_depth: 256,
            deadline: Duration::from_millis(1000),
            idle_timeout: Duration::from_secs(5),
            limits: Limits::default(),
            library_path: None,
            trace_enabled: true,
            trace_sample_every: 64,
            access_log_every: 0,
            shards: 0,
            shard_mode: PartitionMode::HashGoal,
            admin_deadline: Duration::from_secs(10),
            append_max_entries: router::DEFAULT_APPEND_CAP,
            watch: false,
            compact_threshold: 1024,
            compact_max_age: Duration::from_secs(60),
        }
    }
}

/// A running server: join handles plus the shutdown token.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Shutdown,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    reload: ReloadHandle,
    reloader: Option<JoinHandle<()>>,
    watcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the OS-chosen port when `port` was `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A clone of the shutdown token, e.g. to trip it from another thread.
    pub fn shutdown_token(&self) -> Shutdown {
        self.shutdown.clone()
    }

    /// The reload supervisor, e.g. to trigger a programmatic hot reload.
    pub fn reload_handle(&self) -> ReloadHandle {
        self.reload.clone()
    }

    /// Requests shutdown and blocks until the accept loop and every
    /// worker have drained and exited.
    pub fn shutdown(mut self) {
        self.shutdown.request();
        self.join_threads();
    }

    /// Blocks until the shutdown token trips (signal or another thread),
    /// then drains exactly like [`ServerHandle::shutdown`].
    pub fn wait(mut self) {
        self.shutdown.wait();
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // The watcher only submits fire-and-forget jobs; stop it before
        // the supervisor so nothing new is enqueued during the drain.
        if let Some(watcher) = self.watcher.take() {
            let _ = watcher.join();
        }
        // Last: the reload supervisor answers any queued jobs, then exits.
        self.reload.close();
        if let Some(reloader) = self.reloader.take() {
            let _ = reloader.join();
        }
    }
}

/// Builds the model from `library` and starts serving with a fresh
/// (programmatic-only) shutdown token.
pub fn start(
    library: goalrec_core::GoalLibrary,
    config: ServerConfig,
) -> Result<ServerHandle, ServerError> {
    start_with_shutdown(library, config, Shutdown::new())
}

/// [`start`], but wired to a caller-provided shutdown token — pass one
/// from [`Shutdown::watching_signals`] to drain on `SIGTERM`/`SIGINT`.
pub fn start_with_shutdown(
    library: goalrec_core::GoalLibrary,
    config: ServerConfig,
    shutdown: Shutdown,
) -> Result<ServerHandle, ServerError> {
    // The shard plane is built from the same library before it moves into
    // the global state (every shard keeps the full global id spaces, so
    // the global model still backs names, stats and id validation).
    // A persisted per-shard GRLB v2 snapshot family next to the library
    // file (written by `goalrec compile --shards N`) boots every shard
    // mapped off disk; without one — or with a stale one — the shards are
    // partitioned from the library as before.
    let shard_set = if config.shards > 0 {
        let family = match &config.library_path {
            Some(path) => {
                match ShardSet::open_family(path, config.shards, config.shard_mode, &library) {
                    Ok(set) => set,
                    Err(e) => {
                        eprintln!(
                            "goalrec-serve: shard snapshot family next to {} rejected ({e}); \
                             rebuilding shards from the library",
                            path.display()
                        );
                        None
                    }
                }
            }
            None => None,
        };
        let set = match family {
            Some(set) => {
                eprintln!(
                    "goalrec-serve: booted {} shards from the persisted snapshot family",
                    set.num_shards()
                );
                set
            }
            None => ShardSet::build(&library, config.shards, config.shard_mode)?,
        };
        Some(Arc::new(set))
    } else {
        None
    };
    let states = Arc::new(StateCell::new(AppState::new(library)?));
    // Boot the live mutation plane: bind the append WAL next to the
    // library file and re-stage anything a previous process acknowledged
    // but had not compacted — before the first request is admitted.
    let live = reload::LivePlane::boot(
        config.library_path.as_deref(),
        config.compact_threshold,
        config.compact_max_age,
    )?;
    if !live.entries().is_empty() {
        reload::publish_staged(&states, shard_set.as_deref(), live.entries())?;
    }
    let bind_addr = format!("{}:{}", config.addr, config.port);
    let listener = TcpListener::bind(&bind_addr).map_err(|e| ServerError::Bind {
        addr: bind_addr.clone(),
        detail: e.to_string(),
    })?;
    let addr = listener.local_addr().map_err(|e| ServerError::Bind {
        addr: bind_addr,
        detail: e.to_string(),
    })?;
    listener
        .set_nonblocking(true)
        .map_err(|e| ServerError::Io {
            context: "configuring listener",
            detail: e.to_string(),
        })?;

    let tail = Arc::new(obs::TailSampler::new(obs::TailConfig {
        sample_every: config.trace_sample_every.max(1),
        ..obs::TailConfig::default()
    }));
    let (reload, reloader) = reload::spawn_reloader(
        Arc::clone(&states),
        shutdown.clone(),
        config.library_path.clone(),
        Arc::clone(&tail),
        shard_set.clone(),
        live,
    )?;
    let ctx = Arc::new(
        ServeCtx::new(states, Some(reload.clone()))
            .with_tail(tail)
            .with_shards(shard_set)
            .with_append_cap(config.append_max_entries),
    );

    let queue: Arc<Bounded<Conn>> = Arc::new(Bounded::new(config.queue_depth));
    let metrics = Arc::new(ServerMetrics::new());
    let policy = ConnPolicy {
        deadline: config.deadline,
        admin_deadline: config.admin_deadline.max(config.deadline),
        idle_timeout: config.idle_timeout,
        limits: config.limits.clone(),
        trace_enabled: config.trace_enabled,
        access_log_every: config.access_log_every,
    };

    let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
        .map(|i| {
            let ctx = Arc::clone(&ctx);
            let queue = Arc::clone(&queue);
            let shutdown = shutdown.clone();
            let metrics = Arc::clone(&metrics);
            let policy = policy.clone();
            std::thread::Builder::new()
                .name(format!("goalrec-worker-{i}"))
                .spawn(move || pool::worker_loop(i, ctx, queue, shutdown, metrics, policy))
                .map_err(|e| ServerError::Io {
                    context: "spawning worker thread",
                    detail: e.to_string(),
                })
        })
        .collect::<Result<_, _>>()?;

    let accept = {
        let queue = Arc::clone(&queue);
        let shutdown = shutdown.clone();
        let metrics = Arc::clone(&metrics);
        std::thread::Builder::new()
            .name("goalrec-accept".to_owned())
            .spawn(move || accept_loop(listener, queue, shutdown, metrics))
            .map_err(|e| ServerError::Io {
                context: "spawning accept thread",
                detail: e.to_string(),
            })?
    };

    let watcher = match (&config.library_path, config.watch) {
        (Some(path), true) => {
            let path = path.clone();
            let reload = reload.clone();
            let shutdown = shutdown.clone();
            Some(
                std::thread::Builder::new()
                    .name("goalrec-watch".to_owned())
                    .spawn(move || watch_loop(path, reload, shutdown))
                    .map_err(|e| ServerError::Io {
                        context: "spawning watch thread",
                        detail: e.to_string(),
                    })?,
            )
        }
        _ => None,
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        accept: Some(accept),
        workers,
        reload,
        reloader: Some(reloader),
        watcher,
    })
}

/// How often the `--watch` thread polls the library file's mtime.
const WATCH_POLL: Duration = Duration::from_millis(500);

/// Debounced stat polling (std-only — no OS watcher APIs): a change is
/// acted on only after the new `(mtime, len)` signature has been stable
/// across two consecutive polls, so a writer mid-stream does not trigger
/// a reload of a half-written file. The length rides along because mtime
/// granularity is filesystem-dependent (whole seconds on some) — a
/// rewrite landing within the same tick as the previous observation
/// would otherwise go unseen. Atomic writers (like this repo's own
/// tooling) rename into place, so their single signature step debounces
/// in one extra poll. Reloads are submitted fire-and-forget; a full
/// queue simply leaves the change for the next tick. A compaction's own
/// persist also steps the signature — the resulting self-triggered
/// reload re-reads the file the server just wrote, which is redundant
/// but harmless.
fn watch_loop(path: PathBuf, reload: ReloadHandle, shutdown: Shutdown) {
    let sig = |p: &std::path::Path| {
        let m = std::fs::metadata(p).ok()?;
        Some((m.modified().ok()?, m.len()))
    };
    let mut last_known = sig(&path);
    let mut pending: Option<(std::time::SystemTime, u64)> = None;
    while !shutdown.is_set() {
        std::thread::sleep(WATCH_POLL);
        let now = sig(&path);
        match (now, pending) {
            (Some(t), Some(p)) if t == p => {
                // Stable across two polls — debounced; fire if it is
                // genuinely new.
                if last_known != Some(t) {
                    eprintln!(
                        "goalrec-serve: {} changed on disk; reloading",
                        path.display()
                    );
                    reload.reload_async(path.clone());
                    last_known = Some(t);
                }
                pending = None;
            }
            (Some(t), _) if last_known != Some(t) => pending = Some(t),
            _ => pending = None,
        }
    }
}

/// How many backlog connections the accept loop still admits after the
/// shutdown token trips, so a connect flood cannot stall the drain.
const DRAIN_ACCEPT_BUDGET: usize = 1024;

fn accept_loop(
    listener: TcpListener,
    queue: Arc<Bounded<Conn>>,
    shutdown: Shutdown,
    metrics: Arc<ServerMetrics>,
) {
    let mut drain_budget = DRAIN_ACCEPT_BUDGET;
    loop {
        let stopping = shutdown.is_set();
        match listener.accept() {
            Ok((stream, _peer)) => {
                if stopping {
                    if drain_budget == 0 {
                        reject(stream, &metrics);
                        break;
                    }
                    drain_budget -= 1;
                }
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                match queue.try_push(Conn {
                    stream,
                    accepted: Instant::now(),
                }) {
                    TryPush::Admitted => metrics.connections.inc(),
                    TryPush::Full(conn) | TryPush::Closed(conn) => {
                        reject(conn.stream, &metrics);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if stopping {
                    // The OS backlog is drained; nothing else was admitted.
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    queue.close();
}

/// Best-effort `503` for a connection that was never admitted.
fn reject(mut stream: TcpStream, metrics: &ServerMetrics) {
    metrics.rejected.inc();
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    if let Some(resp) = Response::from_error(&ServerError::QueueFull) {
        let mut out = Vec::new();
        if resp.write_to(&mut out, false).is_ok() {
            let _ = stream.write_all(&out);
        }
    }
}

/// Loads nothing, owns nothing: binds, prints the endpoints, serves until
/// `SIGTERM`/`SIGINT`, then drains. This is the body of both the
/// `goalrec-serve` binary and the `goalrec serve` subcommand.
pub fn run_blocking(
    library: goalrec_core::GoalLibrary,
    config: ServerConfig,
) -> Result<(), ServerError> {
    shutdown::install_signal_handlers();
    let token = Shutdown::watching_signals();
    let shards = config.shards;
    let shard_mode = config.shard_mode;
    let watching = config.watch && config.library_path.is_some();
    let handle = start_with_shutdown(library, config, token)?;
    println!("goalrec-serve listening on http://{}", handle.local_addr());
    if shards > 0 {
        println!(
            "serving sharded: {shards} shards ({shard_mode:?} placement), exact k-way merge; \
             per-shard reload via {{\"shard\": i}}"
        );
    }
    if watching {
        println!("watching the library file for changes (debounced mtime polling)");
    }
    println!("  POST /v1/recommend     {{\"activity\": [ids…], \"strategy\": name, \"k\": n}}");
    println!("  POST /v1/admin/reload  hot-swap the model ({{\"path\": file}} or startup file)");
    println!(
        "  POST /v1/admin/library/append  stage implementations live \
         ({{\"goal\", \"actions\"}} or {{\"implementations\": […]}})"
    );
    println!("  GET  /v1/stats         library statistics + metrics snapshot (JSON)");
    println!("  GET  /metrics          metrics snapshot (text; ?format=prometheus for exposition)");
    println!("  GET  /healthz          liveness JSON (generation, model age, uptime)");
    println!("  GET  /debug/traces     sampled tail traces (?route=&strategy=&min_us=)");
    println!("  GET  /debug/requests   in-flight request snapshot");
    println!("reload with SIGHUP; stop with SIGTERM or ctrl-c (in-flight requests drain)");
    handle.wait();
    eprintln!("goalrec-serve: drained, bye");
    Ok(())
}
