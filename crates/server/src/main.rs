//! `goalrec-serve` — the standalone server binary.
//!
//! ```text
//! goalrec-serve --library FILE[.jsonl|.grlb]
//!               [--addr HOST] [--port N] [--workers N]
//!               [--queue-depth N] [--deadline-ms N] [--idle-ms N]
//!               [--admin-deadline-ms N] [--append-max-entries N]
//!               [--watch] [--compact-threshold N] [--compact-max-age-ms N]
//!               [--no-trace] [--trace-sample-every N]
//!               [--access-log] [--access-log-every N]
//!               [--shards N] [--shard-mode hash|balanced]
//! ```
//!
//! Loads the library once, compiles the [`goalrec_core::GoalModel`], and
//! serves until `SIGTERM`/ctrl-c, draining in-flight requests before
//! exit. The `goalrec serve` CLI subcommand is a thin wrapper over the
//! same [`goalrec_server::run_blocking`] entry point.

use goalrec_server::{PartitionMode, ServerConfig};
use std::time::Duration;

const USAGE: &str = "usage: goalrec-serve --library FILE[.jsonl|.grlb] \
    [--addr HOST] [--port N] [--workers N] [--queue-depth N] \
    [--deadline-ms N] [--idle-ms N] \
    [--admin-deadline-ms N] [--append-max-entries N] \
    [--watch] [--compact-threshold N] [--compact-max-age-ms N] \
    [--no-trace] [--trace-sample-every N] \
    [--access-log] [--access-log-every N] \
    [--shards N] [--shard-mode hash|balanced]";

fn parse_args(argv: &[String]) -> Result<(String, ServerConfig), String> {
    let mut config = ServerConfig::default();
    let mut library: Option<String> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("missing value for {flag}\n{USAGE}"))
        };
        match arg.as_str() {
            "--library" => library = Some(value("--library")?.to_owned()),
            "--addr" => config.addr = value("--addr")?.to_owned(),
            "--port" => config.port = parse_num(value("--port")?, "--port")?,
            "--workers" => config.workers = parse_num(value("--workers")?, "--workers")?,
            "--queue-depth" => {
                config.queue_depth = parse_num(value("--queue-depth")?, "--queue-depth")?
            }
            "--deadline-ms" => {
                config.deadline =
                    Duration::from_millis(parse_num(value("--deadline-ms")?, "--deadline-ms")?)
            }
            "--idle-ms" => {
                config.idle_timeout =
                    Duration::from_millis(parse_num(value("--idle-ms")?, "--idle-ms")?)
            }
            "--admin-deadline-ms" => {
                config.admin_deadline = Duration::from_millis(parse_num(
                    value("--admin-deadline-ms")?,
                    "--admin-deadline-ms",
                )?)
            }
            "--append-max-entries" => {
                config.append_max_entries =
                    parse_num(value("--append-max-entries")?, "--append-max-entries")?
            }
            "--watch" => config.watch = true,
            "--compact-threshold" => {
                config.compact_threshold =
                    parse_num(value("--compact-threshold")?, "--compact-threshold")?
            }
            "--compact-max-age-ms" => {
                config.compact_max_age = Duration::from_millis(parse_num(
                    value("--compact-max-age-ms")?,
                    "--compact-max-age-ms",
                )?)
            }
            "--no-trace" => config.trace_enabled = false,
            "--trace-sample-every" => {
                config.trace_sample_every =
                    parse_num(value("--trace-sample-every")?, "--trace-sample-every")?
            }
            "--access-log" => config.access_log_every = config.access_log_every.max(1),
            "--access-log-every" => {
                config.access_log_every =
                    parse_num(value("--access-log-every")?, "--access-log-every")?
            }
            "--shards" => config.shards = parse_num(value("--shards")?, "--shards")?,
            "--shard-mode" => {
                let raw = value("--shard-mode")?;
                config.shard_mode = PartitionMode::parse(raw).ok_or_else(|| {
                    format!("--shard-mode expects 'hash' or 'balanced', got '{raw}'")
                })?
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    let library = library.ok_or_else(|| format!("missing required --library\n{USAGE}"))?;
    Ok((library, config))
}

fn parse_num<T: std::str::FromStr>(raw: &str, flag: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{flag} expects a number, got '{raw}'"))
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (library_path, mut config) = parse_args(&argv)?;
    let library = goalrec_datasets::io::read_library_auto(std::path::Path::new(&library_path))
        .map_err(|e| format!("cannot load library {library_path}: {e}"))?;
    // SIGHUP and path-less admin reloads re-read the same file.
    config.library_path = Some(std::path::PathBuf::from(&library_path));
    let stats = library.stats();
    eprintln!(
        "loaded {library_path}: {} implementations, {} goals, {} actions",
        stats.num_implementations, stats.num_goals, stats.num_actions
    );
    goalrec_server::run_blocking(library, config).map_err(|e| e.to_string())
}

fn main() {
    if let Err(e) = run() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_full_flag_set() {
        let (lib, cfg) = parse_args(&args(&[
            "--library",
            "x.jsonl",
            "--addr",
            "0.0.0.0",
            "--port",
            "9000",
            "--workers",
            "3",
            "--queue-depth",
            "17",
            "--deadline-ms",
            "250",
            "--idle-ms",
            "750",
            "--no-trace",
            "--trace-sample-every",
            "16",
            "--access-log-every",
            "32",
            "--shards",
            "4",
            "--shard-mode",
            "balanced",
        ]))
        .unwrap();
        assert_eq!(lib, "x.jsonl");
        assert_eq!(cfg.addr, "0.0.0.0");
        assert_eq!(cfg.port, 9000);
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.queue_depth, 17);
        assert_eq!(cfg.deadline, Duration::from_millis(250));
        assert_eq!(cfg.idle_timeout, Duration::from_millis(750));
        assert!(!cfg.trace_enabled);
        assert_eq!(cfg.trace_sample_every, 16);
        assert_eq!(cfg.access_log_every, 32);
        assert_eq!(cfg.shards, 4);
        assert!(matches!(cfg.shard_mode, PartitionMode::BalancedMass));
    }

    #[test]
    fn defaults_unsharded_and_rejects_bad_shard_modes() {
        let (_, cfg) = parse_args(&args(&["--library", "x.jsonl"])).unwrap();
        assert_eq!(cfg.shards, 0);
        assert!(matches!(cfg.shard_mode, PartitionMode::HashGoal));
        assert!(parse_args(&args(&["--library", "x", "--shards", "two"])).is_err());
        assert!(parse_args(&args(&["--library", "x", "--shard-mode", "zig"])).is_err());
    }

    #[test]
    fn parses_the_live_mutation_flags() {
        let (_, cfg) = parse_args(&args(&[
            "--library",
            "x.jsonl",
            "--admin-deadline-ms",
            "30000",
            "--append-max-entries",
            "64",
            "--watch",
            "--compact-threshold",
            "256",
            "--compact-max-age-ms",
            "5000",
        ]))
        .unwrap();
        assert_eq!(cfg.admin_deadline, Duration::from_millis(30_000));
        assert_eq!(cfg.append_max_entries, 64);
        assert!(cfg.watch);
        assert_eq!(cfg.compact_threshold, 256);
        assert_eq!(cfg.compact_max_age, Duration::from_millis(5_000));
    }

    #[test]
    fn live_mutation_flags_default_off() {
        let (_, cfg) = parse_args(&args(&["--library", "x.jsonl"])).unwrap();
        assert!(!cfg.watch);
        assert!(cfg.admin_deadline >= cfg.deadline);
        assert!(cfg.append_max_entries > 0);
        assert!(parse_args(&args(&["--library", "x", "--compact-threshold", "many"])).is_err());
    }

    #[test]
    fn defaults_trace_on_and_access_log_off() {
        let (_, cfg) = parse_args(&args(&["--library", "x.jsonl"])).unwrap();
        assert!(cfg.trace_enabled);
        assert_eq!(cfg.access_log_every, 0);
        let (_, cfg) = parse_args(&args(&["--library", "x.jsonl", "--access-log"])).unwrap();
        assert_eq!(cfg.access_log_every, 1);
    }

    #[test]
    fn rejects_missing_library_and_bad_numbers() {
        assert!(parse_args(&args(&["--port", "1"])).is_err());
        assert!(parse_args(&args(&["--library", "x", "--port", "hi"])).is_err());
        assert!(parse_args(&args(&["--library", "x", "--bogus"])).is_err());
        assert!(parse_args(&args(&["--library"])).is_err());
    }
}
