//! The worker pool: N threads draining the admission queue, each owning a
//! handle to the shared [`ServeCtx`] and serving whole keep-alive
//! connections. Each request loads one `AppState` snapshot through the
//! context, so hot reloads never swap the model under a request.
//!
//! Time discipline per connection:
//!
//! * the **first** request's clock starts at *accept* time, so time spent
//!   waiting in the admission queue counts against the deadline — a
//!   request that aged out in the queue is answered `408` without even
//!   being parsed;
//! * each subsequent keep-alive request's clock starts when its first
//!   byte arrives;
//! * while a request is being read, every socket read is capped by the
//!   remaining deadline (see [`ConnStream`]), so a slow sender cannot pin
//!   a worker past the deadline;
//! * between requests the worker waits in short slices, polling the
//!   shutdown token and the idle budget, so an idle keep-alive connection
//!   neither blocks shutdown nor holds a worker forever.

use crate::error::ServerError;
use crate::http::{self, HttpReader, Limits, Response};
use crate::queue::{Bounded, Pop};
use crate::router::{self, ServeCtx};
use crate::shutdown::Shutdown;
use goalrec_core::Scratch;
use goalrec_obs::{self as obs, names};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a worker blocks on the queue before re-checking for close.
const QUEUE_POLL: Duration = Duration::from_millis(50);
/// Idle-wait slice between keep-alive requests.
const IDLE_SLICE: Duration = Duration::from_millis(25);
/// Cap on any single blocking read, even far from the deadline.
const MAX_READ_SLICE: Duration = Duration::from_secs(5);
/// How long a response write may block before the connection is dropped.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// One admitted connection, stamped with its accept time so queue wait
/// counts against the first request's deadline.
pub(crate) struct Conn {
    pub stream: TcpStream,
    pub accepted: Instant,
}

/// Per-connection timing knobs handed to each worker.
#[derive(Clone)]
pub(crate) struct ConnPolicy {
    pub deadline: Duration,
    pub idle_timeout: Duration,
    pub limits: Limits,
}

/// The serving metrics, resolved once and shared by every thread.
pub(crate) struct ServerMetrics {
    pub requests: Arc<obs::Counter>,
    pub rejected: Arc<obs::Counter>,
    pub timeouts: Arc<obs::Counter>,
    pub connections: Arc<obs::Counter>,
    pub latency: Arc<obs::Histogram>,
    inflight_gauge: Arc<obs::Gauge>,
    inflight: AtomicI64,
}

impl ServerMetrics {
    pub fn new() -> Self {
        ServerMetrics {
            requests: obs::counter(names::SERVER_REQUESTS),
            rejected: obs::counter(names::SERVER_REJECTED),
            timeouts: obs::counter(names::SERVER_TIMEOUTS),
            connections: obs::counter(names::SERVER_CONNECTIONS),
            latency: obs::histogram_ns(names::SERVER_LATENCY),
            inflight_gauge: obs::gauge(names::SERVER_INFLIGHT),
            inflight: AtomicI64::new(0),
        }
    }

    fn enter_inflight(&self) {
        let now = self.inflight.fetch_add(1, Ordering::SeqCst) + 1;
        self.inflight_gauge.set(now as f64);
    }

    fn exit_inflight(&self) {
        let now = self.inflight.fetch_sub(1, Ordering::SeqCst) - 1;
        self.inflight_gauge.set(now as f64);
    }
}

/// A [`TcpStream`] whose reads respect an optional absolute deadline.
///
/// With a deadline set, each read blocks at most until the deadline (and
/// reports [`std::io::ErrorKind::TimedOut`] once it has passed); without
/// one, reads block in [`IDLE_SLICE`] increments so the caller can poll
/// shutdown and idle budgets between slices.
pub(crate) struct ConnStream {
    stream: TcpStream,
    pub deadline: Option<Instant>,
}

impl ConnStream {
    fn new(stream: TcpStream) -> Self {
        ConnStream {
            stream,
            deadline: None,
        }
    }
}

impl Read for ConnStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let slice = match self.deadline {
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(std::io::Error::from(std::io::ErrorKind::TimedOut));
                }
                remaining.min(MAX_READ_SLICE)
            }
            None => IDLE_SLICE,
        };
        self.stream
            .set_read_timeout(Some(slice.max(Duration::from_millis(1))))?;
        self.stream.read(buf)
    }
}

impl Write for ConnStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.stream.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.stream.flush()
    }
}

/// The worker thread body: drain connections until the queue is closed
/// *and* empty — exactly the graceful-drain contract. Each worker owns one
/// [`Scratch`] arena for the whole loop, so recommend requests rank into
/// warm buffers instead of allocating per request.
pub(crate) fn worker_loop(
    ctx: Arc<ServeCtx>,
    queue: Arc<Bounded<Conn>>,
    shutdown: Shutdown,
    metrics: Arc<ServerMetrics>,
    policy: ConnPolicy,
) {
    let mut scratch = Scratch::new();
    loop {
        match queue.pop(QUEUE_POLL) {
            Pop::Item(conn) => {
                handle_connection(conn, &ctx, &shutdown, &metrics, &policy, &mut scratch)
            }
            Pop::Empty => {}
            Pop::Closed => break,
        }
    }
}

/// Writes one response and maintains the request/latency metrics.
/// Returns whether the socket is still usable.
fn respond(
    reader: &mut HttpReader<ConnStream>,
    response: &Response,
    keep_alive: bool,
    t0: Instant,
    metrics: &ServerMetrics,
) -> bool {
    let ok = response.write_to(reader.get_mut(), keep_alive).is_ok();
    metrics.requests.inc();
    metrics
        .latency
        .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    ok && keep_alive && !response.close
}

/// Serves every request of one connection.
fn handle_connection(
    conn: Conn,
    ctx: &ServeCtx,
    shutdown: &Shutdown,
    metrics: &ServerMetrics,
    policy: &ConnPolicy,
    scratch: &mut Scratch,
) {
    let stream = conn.stream;
    let _ = stream.set_nodelay(true);
    if stream.set_write_timeout(Some(WRITE_TIMEOUT)).is_err() {
        return;
    }
    let mut reader = HttpReader::new(ConnStream::new(stream));
    // The first request is accounted from accept time (queue wait included).
    let mut pending_t0 = Some(conn.accepted);

    loop {
        // --- idle phase: wait for the first byte of the next request ----
        let idle_started = Instant::now();
        let got_data = loop {
            if reader.has_buffered() {
                break true;
            }
            if shutdown.is_set() {
                // Draining: wait (at most one deadline) for the first
                // request of an admitted connection, but take no further
                // requests from idle keep-alive connections.
                match pending_t0 {
                    None => break false,
                    Some(t) if t.elapsed() >= policy.deadline => break false,
                    Some(_) => {}
                }
            }
            reader.get_mut().deadline = None;
            match reader.fill_once() {
                Ok(0) => break false,
                Ok(_) => break true,
                Err(ServerError::Timeout) => {
                    if idle_started.elapsed() >= policy.idle_timeout {
                        break false;
                    }
                }
                Err(_) => break false,
            }
        };
        if !got_data {
            break;
        }

        let t0 = pending_t0.take().unwrap_or(idle_started);
        metrics.enter_inflight();

        // Queue-aged admission: the deadline may already be gone before a
        // single byte is parsed.
        if t0.elapsed() >= policy.deadline {
            metrics.timeouts.inc();
            if let Some(resp) = Response::from_error(&ServerError::Timeout) {
                let _ = respond(&mut reader, &resp, false, t0, metrics);
            }
            metrics.exit_inflight();
            break;
        }

        // --- parse phase: every read capped by the remaining deadline ---
        reader.get_mut().deadline = Some(t0 + policy.deadline);
        let parsed = http::read_request(&mut reader, &policy.limits);
        reader.get_mut().deadline = None;

        let alive = match parsed {
            Ok(None) => {
                metrics.exit_inflight();
                break;
            }
            Ok(Some(request)) => {
                let keep = request.keep_alive && !shutdown.is_set();
                if t0.elapsed() >= policy.deadline {
                    metrics.timeouts.inc();
                    match Response::from_error(&ServerError::Timeout) {
                        Some(resp) => respond(&mut reader, &resp, false, t0, metrics),
                        None => false,
                    }
                } else {
                    let response = match router::handle(ctx, &request, scratch) {
                        Ok(resp) => resp,
                        Err(err) => match Response::from_error(&err) {
                            Some(resp) => resp,
                            None => {
                                metrics.exit_inflight();
                                break;
                            }
                        },
                    };
                    respond(&mut reader, &response, keep, t0, metrics)
                }
            }
            Err(err) => {
                if matches!(err, ServerError::Timeout) {
                    metrics.timeouts.inc();
                }
                match Response::from_error(&err) {
                    Some(resp) => respond(&mut reader, &resp, false, t0, metrics),
                    None => {
                        metrics.exit_inflight();
                        break;
                    }
                }
            }
        };
        metrics.exit_inflight();
        if !alive {
            break;
        }
    }
}
