//! The worker pool: N threads draining the admission queue, each owning a
//! handle to the shared [`ServeCtx`] and serving whole keep-alive
//! connections. Each request loads one `AppState` snapshot through the
//! context, so hot reloads never swap the model under a request.
//!
//! Time discipline per connection:
//!
//! * the **first** request's clock starts at *accept* time, so time spent
//!   waiting in the admission queue counts against the deadline — a
//!   request that aged out in the queue is answered `408` without even
//!   being parsed;
//! * each subsequent keep-alive request's clock starts when its first
//!   byte arrives;
//! * while a request is being read, every socket read is capped by the
//!   remaining deadline (see [`ConnStream`]), so a slow sender cannot pin
//!   a worker past the deadline;
//! * between requests the worker waits in short slices, polling the
//!   shutdown token and the idle budget, so an idle keep-alive connection
//!   neither blocks shutdown nor holds a worker forever.

use crate::debug::{self, InflightSlot};
use crate::error::ServerError;
use crate::http::{self, HttpReader, Limits, Response};
use crate::queue::{Bounded, Pop};
use crate::router::{self, ServeCtx, WorkerArena};
use crate::shutdown::Shutdown;
use goalrec_obs::{self as obs, names};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long a worker blocks on the queue before re-checking for close.
const QUEUE_POLL: Duration = Duration::from_millis(50);
/// Idle-wait slice between keep-alive requests.
const IDLE_SLICE: Duration = Duration::from_millis(25);
/// Cap on any single blocking read, even far from the deadline.
const MAX_READ_SLICE: Duration = Duration::from_secs(5);
/// How long a response write may block before the connection is dropped.
const WRITE_TIMEOUT: Duration = Duration::from_secs(5);

/// One admitted connection, stamped with its accept time so queue wait
/// counts against the first request's deadline.
pub(crate) struct Conn {
    pub stream: TcpStream,
    pub accepted: Instant,
}

/// Per-connection timing and tracing knobs handed to each worker.
#[derive(Clone)]
pub(crate) struct ConnPolicy {
    pub deadline: Duration,
    /// Deadline for `/v1/admin/*` routes. Admin work (reloads, appends)
    /// legitimately outlives the data-plane budget, so it gets its own;
    /// reads are capped by the larger of the two until the path is known.
    pub admin_deadline: Duration,
    pub idle_timeout: Duration,
    pub limits: Limits,
    /// Request-scoped tracing: spans, tail capture, `X-Goalrec-Trace`.
    pub trace_enabled: bool,
    /// Print every Nth traced request as a JSON access-log line on
    /// stderr; `0` disables the log.
    pub access_log_every: u64,
}

/// The serving metrics, resolved once and shared by every thread.
pub(crate) struct ServerMetrics {
    pub requests: Arc<obs::Counter>,
    pub rejected: Arc<obs::Counter>,
    pub timeouts: Arc<obs::Counter>,
    pub connections: Arc<obs::Counter>,
    pub latency: Arc<obs::Histogram>,
    inflight_gauge: Arc<obs::Gauge>,
    inflight: AtomicI64,
}

impl ServerMetrics {
    pub fn new() -> Self {
        ServerMetrics {
            requests: obs::counter(names::SERVER_REQUESTS),
            rejected: obs::counter(names::SERVER_REJECTED),
            timeouts: obs::counter(names::SERVER_TIMEOUTS),
            connections: obs::counter(names::SERVER_CONNECTIONS),
            latency: obs::histogram_ns(names::SERVER_LATENCY),
            inflight_gauge: obs::gauge(names::SERVER_INFLIGHT),
            inflight: AtomicI64::new(0),
        }
    }

    fn enter_inflight(&self) {
        // ordering: pure occupancy counter feeding the inflight gauge;
        // fetch_add keeps the count exact and publishes nothing else.
        let now = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.inflight_gauge.set(now as f64);
    }

    fn exit_inflight(&self) {
        // ordering: pure occupancy counter feeding the inflight gauge;
        // fetch_sub keeps the count exact and publishes nothing else.
        let now = self.inflight.fetch_sub(1, Ordering::Relaxed) - 1;
        self.inflight_gauge.set(now as f64);
    }
}

/// A [`TcpStream`] whose reads respect an optional absolute deadline.
///
/// With a deadline set, each read blocks at most until the deadline (and
/// reports [`std::io::ErrorKind::TimedOut`] once it has passed); without
/// one, reads block in [`IDLE_SLICE`] increments so the caller can poll
/// shutdown and idle budgets between slices.
pub(crate) struct ConnStream {
    stream: TcpStream,
    pub deadline: Option<Instant>,
}

impl ConnStream {
    fn new(stream: TcpStream) -> Self {
        ConnStream {
            stream,
            deadline: None,
        }
    }
}

impl Read for ConnStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let slice = match self.deadline {
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(std::io::Error::from(std::io::ErrorKind::TimedOut));
                }
                remaining.min(MAX_READ_SLICE)
            }
            None => IDLE_SLICE,
        };
        self.stream
            .set_read_timeout(Some(slice.max(Duration::from_millis(1))))?;
        self.stream.read(buf)
    }
}

impl Write for ConnStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.stream.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.stream.flush()
    }
}

/// The worker thread body: drain connections until the queue is closed
/// *and* empty — exactly the graceful-drain contract. Each worker owns one
/// [`WorkerArena`] and one reusable [`obs::TraceContext`] for the whole
/// loop, so recommend requests rank (and trace) into warm buffers instead
/// of allocating per request, on both the unsharded and sharded paths.
pub(crate) fn worker_loop(
    worker: usize,
    ctx: Arc<ServeCtx>,
    queue: Arc<Bounded<Conn>>,
    shutdown: Shutdown,
    metrics: Arc<ServerMetrics>,
    policy: ConnPolicy,
) {
    let mut arena = WorkerArena::new();
    let mut trace = obs::TraceContext::new(policy.trace_enabled);
    let mut wobs = WorkerObs {
        tail: Arc::clone(ctx.tail()),
        slot: ctx.inflight().register(worker),
        access_every: policy.access_log_every,
        served: 0,
    };
    loop {
        match queue.pop(QUEUE_POLL) {
            Pop::Item(conn) => handle_connection(
                conn, &ctx, &shutdown, &metrics, &policy, &mut arena, &mut trace, &mut wobs,
            ),
            Pop::Empty => {}
            Pop::Closed => break,
        }
    }
}

/// Per-worker tracing sinks: the shared tail sampler, this worker's
/// in-flight slot, and the access-log sampling state.
struct WorkerObs {
    tail: Arc<obs::TailSampler>,
    slot: Arc<InflightSlot>,
    access_every: u64,
    served: u64,
}

/// Writes one response and maintains the request/latency metrics plus the
/// trace epilogue: the `X-Goalrec-Trace` header, the `span.write` span,
/// the tail-sampler offer and the sampled access log. Returns whether the
/// socket is still usable.
fn respond(
    reader: &mut HttpReader<ConnStream>,
    response: &mut Response,
    keep_alive: bool,
    metrics: &ServerMetrics,
    trace: &mut obs::TraceContext,
    wobs: &mut WorkerObs,
) -> bool {
    let traced = trace.is_enabled();
    if traced {
        response
            .extra_headers
            .push(("X-Goalrec-Trace", trace.id().to_hex()));
    }
    wobs.slot.set_stage(debug::STAGE_WRITE);
    let write = trace.start_span(names::SPAN_WRITE);
    let ok = response.write_to(reader.get_mut(), keep_alive).is_ok();
    trace.end_span(write);
    metrics.requests.inc();
    // One clock read seals the trace AND feeds the latency histogram, so
    // a trace's total_ns is byte-identical to its latency observation.
    // (begin() anchored the trace at t0, so this holds untraced too.)
    let total_ns = trace.finish(response.status);
    metrics.latency.record(total_ns);
    if traced {
        let snap = trace.snapshot();
        wobs.tail.offer(&snap);
        wobs.served += 1;
        if wobs.access_every > 0 && wobs.served.is_multiple_of(wobs.access_every) {
            access_log(&snap);
        }
    }
    ok && keep_alive && !response.close
}

/// One single-line JSON access-log record on stderr.
// goalrec-lint:allow(hot-path-alloc): sampled access log — writes one stderr line every Nth traced request
fn access_log(snap: &obs::CompletedTrace) {
    let handler_us = snap
        .spans()
        .iter()
        .find(|s| s.name == names::SPAN_HANDLE)
        .map(|s| s.dur_ns / 1_000)
        .unwrap_or(0);
    let doc = serde_json::json!({
        "ts_ms": snap.unix_ms,
        "trace": snap.id.to_hex(),
        "route": snap.route,
        "status": snap.status,
        "queue_wait_us": snap.queue_wait_ns / 1_000,
        "handler_us": handler_us,
        "total_us": snap.total_ns / 1_000,
    });
    eprintln!("{doc}");
}

/// Serves every request of one connection.
#[allow(clippy::too_many_arguments)]
fn handle_connection(
    conn: Conn,
    ctx: &ServeCtx,
    shutdown: &Shutdown,
    metrics: &ServerMetrics,
    policy: &ConnPolicy,
    arena: &mut WorkerArena,
    trace: &mut obs::TraceContext,
    wobs: &mut WorkerObs,
) {
    // Queue wait: accept → this worker picking the connection up. It is
    // charged to the first request only (whose clock starts at accept).
    let queue_wait_ns = u64::try_from(
        Instant::now()
            .saturating_duration_since(conn.accepted)
            .as_nanos(),
    )
    .unwrap_or(u64::MAX);
    let stream = conn.stream;
    let _ = stream.set_nodelay(true);
    if stream.set_write_timeout(Some(WRITE_TIMEOUT)).is_err() {
        return;
    }
    let mut reader = HttpReader::new(ConnStream::new(stream));
    // The first request is accounted from accept time (queue wait included).
    let mut pending_t0 = Some(conn.accepted);

    loop {
        // --- idle phase: wait for the first byte of the next request ----
        let idle_started = Instant::now();
        let got_data = loop {
            if reader.has_buffered() {
                break true;
            }
            if shutdown.is_set() {
                // Draining: wait (at most one deadline) for the first
                // request of an admitted connection, but take no further
                // requests from idle keep-alive connections.
                match pending_t0 {
                    None => break false,
                    Some(t) if t.elapsed() >= policy.deadline => break false,
                    Some(_) => {}
                }
            }
            reader.get_mut().deadline = None;
            match reader.fill_once() {
                Ok(0) => break false,
                Ok(_) => break true,
                Err(ServerError::Timeout) => {
                    if idle_started.elapsed() >= policy.idle_timeout {
                        break false;
                    }
                }
                Err(_) => break false,
            }
        };
        if !got_data {
            break;
        }

        // First request: clocked from accept, charged with the queue
        // wait. Keep-alive successors: clocked from their idle start.
        let (t0, queue_wait) = match pending_t0.take() {
            Some(accepted) => (accepted, queue_wait_ns),
            None => (idle_started, 0),
        };
        metrics.enter_inflight();

        // --- trace prologue: one id per request, spans offset from t0 --
        let id = if trace.is_enabled() {
            obs::fresh_trace_id()
        } else {
            obs::TraceId(0)
        };
        trace.begin(id, t0);
        wobs.slot.begin(id, ctx.inflight().offset_us(t0));
        if queue_wait > 0 {
            trace.add_span(names::SPAN_QUEUE_WAIT, 0, queue_wait, false);
            trace.set_queue_wait_ns(queue_wait);
        }

        // Until the request line is parsed the route is unknown, so the
        // read path is budgeted by the most generous deadline on offer;
        // the per-route deadline is enforced right after parsing.
        let read_budget = policy.deadline.max(policy.admin_deadline);

        // Queue-aged admission: the deadline may already be gone before a
        // single byte is parsed.
        if t0.elapsed() >= read_budget {
            metrics.timeouts.inc();
            if let Some(mut resp) = Response::from_error(&ServerError::Timeout) {
                let _ = respond(&mut reader, &mut resp, false, metrics, trace, wobs);
            }
            wobs.slot.end();
            metrics.exit_inflight();
            break;
        }

        // --- parse phase: every read capped by the remaining deadline ---
        // The parse span starts where the queue wait ended, so it also
        // absorbs the wait for the request's first byte: the top-level
        // spans of a completed trace partition [0, total_ns].
        reader.get_mut().deadline = Some(t0 + read_budget);
        let parsed = http::read_request(&mut reader, &policy.limits);
        reader.get_mut().deadline = None;
        let parse_end = trace.elapsed_ns();
        trace.add_span(
            names::SPAN_PARSE,
            queue_wait,
            parse_end.saturating_sub(queue_wait),
            false,
        );

        let alive = match parsed {
            Ok(None) => {
                wobs.slot.end();
                metrics.exit_inflight();
                break;
            }
            Ok(Some(request)) => {
                // An inbound trace id (from a caller propagating its own
                // context) replaces the generated one.
                if let Some(inbound) = request
                    .header("x-goalrec-trace")
                    .and_then(obs::TraceId::parse_hex)
                {
                    trace.set_id(inbound);
                    wobs.slot.set_trace(inbound);
                }
                let keep = request.keep_alive && !shutdown.is_set();
                // Route known: admin routes live on their own budget, the
                // data plane on the tight one.
                let route_deadline = if request.path.starts_with("/v1/admin/") {
                    policy.admin_deadline
                } else {
                    policy.deadline
                };
                if t0.elapsed() >= route_deadline {
                    metrics.timeouts.inc();
                    match Response::from_error(&ServerError::Timeout) {
                        Some(mut resp) => {
                            respond(&mut reader, &mut resp, false, metrics, trace, wobs)
                        }
                        None => false,
                    }
                } else {
                    wobs.slot.set_stage(debug::STAGE_HANDLE);
                    let handling = trace.start_span(names::SPAN_HANDLE);
                    let routed = router::handle(ctx, &request, arena, trace);
                    trace.end_span(handling);
                    let mut response = match routed {
                        Ok(resp) => resp,
                        Err(err) => match Response::from_error(&err) {
                            Some(resp) => resp,
                            None => {
                                wobs.slot.end();
                                metrics.exit_inflight();
                                break;
                            }
                        },
                    };
                    respond(&mut reader, &mut response, keep, metrics, trace, wobs)
                }
            }
            Err(err) => {
                if matches!(err, ServerError::Timeout) {
                    metrics.timeouts.inc();
                }
                match Response::from_error(&err) {
                    Some(mut resp) => respond(&mut reader, &mut resp, false, metrics, trace, wobs),
                    None => {
                        wobs.slot.end();
                        metrics.exit_inflight();
                        break;
                    }
                }
            }
        };
        wobs.slot.end();
        metrics.exit_inflight();
        if !alive {
            break;
        }
    }
}
