//! The bounded MPMC admission queue between the accept loop and the
//! worker pool.
//!
//! Capacity is the server's admission-control knob: when the queue is
//! full, [`Bounded::try_push`] hands the item straight back and the accept
//! loop answers `503 Service Unavailable` instead of letting latency grow
//! without bound. Closing the queue is the graceful-shutdown edge:
//! producers are turned away immediately, while consumers keep draining
//! whatever was already admitted — [`Bounded::pop`] only reports
//! [`Pop::Closed`] once the queue is both closed *and* empty, which is
//! what guarantees no admitted request is dropped on shutdown.
//!
//! Poisoned mutexes are recovered with [`PoisonError::into_inner`]: the
//! state is a plain `VecDeque` plus a flag, so a consumer panicking while
//! holding the lock cannot leave it inconsistent, and the queue must keep
//! serving the remaining workers.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Outcome of a non-blocking push.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPush<T> {
    /// The item was admitted.
    Admitted,
    /// The queue is at capacity; the item comes back to the caller.
    Full(T),
    /// The queue was closed; the item comes back to the caller.
    Closed(T),
}

/// Outcome of a blocking pop with timeout.
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// An item was dequeued.
    Item(T),
    /// The timeout elapsed with the queue open but empty.
    Empty,
    /// The queue is closed and fully drained.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> Bounded<T> {
    /// Creates a queue admitting at most `capacity` items at once.
    /// A zero capacity is promoted to one — a queue that can never admit
    /// anything would deadlock the accept loop.
    pub fn new(capacity: usize) -> Self {
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits an item without blocking.
    pub fn try_push(&self, item: T) -> TryPush<T> {
        let mut st = self.lock();
        if st.closed {
            return TryPush::Closed(item);
        }
        if st.items.len() >= self.capacity {
            return TryPush::Full(item);
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
        TryPush::Admitted
    }

    /// Dequeues an item, waiting up to `timeout` for one to arrive.
    pub fn pop(&self, timeout: Duration) -> Pop<T> {
        let mut st = self.lock();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(item) = st.items.pop_front() {
                return Pop::Item(item);
            }
            if st.closed {
                return Pop::Closed;
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Pop::Empty;
            }
            let (guard, wait) = self
                .not_empty
                .wait_timeout(st, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
            if wait.timed_out() && st.items.is_empty() {
                return if st.closed { Pop::Closed } else { Pop::Empty };
            }
        }
    }

    /// Closes the queue: producers are refused from now on, consumers
    /// drain the remainder and then observe [`Pop::Closed`].
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_and_capacity_rejection() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1), TryPush::Admitted);
        assert_eq!(q.try_push(2), TryPush::Admitted);
        assert_eq!(q.try_push(3), TryPush::Full(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(Duration::from_millis(1)), Pop::Item(1));
        assert_eq!(q.try_push(3), TryPush::Admitted);
        assert_eq!(q.pop(Duration::from_millis(1)), Pop::Item(2));
        assert_eq!(q.pop(Duration::from_millis(1)), Pop::Item(3));
        assert_eq!(q.pop(Duration::from_millis(1)), Pop::Empty);
    }

    #[test]
    fn zero_capacity_is_promoted_to_one() {
        let q = Bounded::new(0);
        assert_eq!(q.capacity(), 1);
        assert_eq!(q.try_push(9), TryPush::Admitted);
        assert_eq!(q.try_push(10), TryPush::Full(10));
    }

    #[test]
    fn close_drains_before_reporting_closed() {
        let q = Bounded::new(4);
        assert_eq!(q.try_push('a'), TryPush::Admitted);
        assert_eq!(q.try_push('b'), TryPush::Admitted);
        q.close();
        assert_eq!(q.try_push('c'), TryPush::Closed('c'));
        // Consumers still see the admitted items, in order.
        assert_eq!(q.pop(Duration::from_millis(1)), Pop::Item('a'));
        assert_eq!(q.pop(Duration::from_millis(1)), Pop::Item('b'));
        assert_eq!(q.pop(Duration::from_millis(1)), Pop::Closed);
    }

    #[test]
    fn pop_wakes_on_push_across_threads() {
        let q = Arc::new(Bounded::new(8));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop(Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.try_push(42), TryPush::Admitted);
        assert_eq!(consumer.join().unwrap(), Pop::Item(42));
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q: Arc<Bounded<u8>> = Arc::new(Bounded::new(8));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop(Duration::from_secs(5)))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        for c in consumers {
            assert_eq!(c.join().unwrap(), Pop::Closed);
        }
    }

    #[test]
    fn mpmc_loses_nothing_under_contention() {
        let q = Arc::new(Bounded::new(1024));
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        let mut item = p * 1000 + i;
                        loop {
                            match q.try_push(item) {
                                TryPush::Admitted => break,
                                TryPush::Full(back) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                                TryPush::Closed(_) => unreachable!("queue never closed here"),
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Pop::Item(v) = q.pop(Duration::from_millis(200)) {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let expected: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..250u64).map(move |i| p * 1000 + i))
            .collect();
        assert_eq!(all, expected);
    }
}
