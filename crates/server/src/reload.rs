//! Hot model reload with rollback.
//!
//! The serving state lives behind a [`StateCell`] — a `RwLock` around an
//! `Arc<AppState>`. Workers `load()` one `Arc` clone per request, so a
//! request that started on generation *n* finishes on generation *n* even
//! if a swap lands mid-flight; the old state is freed when the last
//! in-flight request drops its clone.
//!
//! Reloads are serialized through a single supervisor thread:
//!
//! ```text
//!   POST /v1/admin/reload ──▶ [job queue] ──▶ reloader thread ──▶ swap
//!   SIGHUP (signal counter) ──────────────▶      │ load + validate
//!                                                └─ on error: keep old
//! ```
//!
//! An attempt loads the library file (through the fault-injectable
//! `goalrec-datasets` readers), rebuilds the model and all four
//! recommenders, and runs [`goalrec_core::GoalModel::validate`] — all
//! **off** the request path. Only a fully validated state is swapped in;
//! any failure (missing file, torn write, injected fault, corrupt model)
//! leaves the previous generation serving. The `server.reload.*` metrics
//! and the `server.model_generation` gauge record every attempt.
//!
//! On a sharded server the supervisor also owns the [`ShardSet`]: a full
//! reload rebuilds and validates **every** sub-model before swapping any
//! of them (all-or-nothing, in lockstep with the global state), and a
//! targeted `{"shard": i}` reload rebuilds and swaps cell `i` alone — a
//! failure there rolls back that one shard while every other shard keeps
//! serving untouched.

use crate::error::ServerError;
use crate::queue::{Bounded, Pop, TryPush};
use crate::router::AppState;
use crate::shards::ShardSet;
use crate::shutdown::{self, Shutdown};
use goalrec_obs::{self as obs, names};
use goalrec_shard::ShardModel;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the supervisor blocks on its queue before re-checking the
/// `SIGHUP` counter and the shutdown token.
const RELOAD_POLL: Duration = Duration::from_millis(50);
/// Upper bound a caller of [`ReloadHandle::reload_blocking`] waits for
/// the supervisor to report back before giving up.
const MAX_RELOAD_WAIT: Duration = Duration::from_secs(60);
/// Pending reload requests beyond this are refused, not queued — piling
/// up identical reloads helps nobody.
const RELOAD_QUEUE_DEPTH: usize = 4;

/// The generation-swappable serving state.
pub struct StateCell {
    slot: RwLock<Arc<AppState>>,
}

impl StateCell {
    /// Wraps the initial state (generation 1 at startup).
    pub fn new(initial: AppState) -> Self {
        StateCell {
            slot: RwLock::new(Arc::new(initial)),
        }
    }

    /// The state serving right now. Callers hold the returned `Arc` for
    /// the duration of one request, so a concurrent swap never changes
    /// the model under a request already being answered.
    pub fn load(&self) -> Arc<AppState> {
        // A poisoned lock only means some thread panicked while holding
        // it; the Arc inside is still intact, so recover and serve.
        Arc::clone(&self.slot.read().unwrap_or_else(PoisonError::into_inner))
    }

    fn swap(&self, next: Arc<AppState>) {
        *self.slot.write().unwrap_or_else(PoisonError::into_inner) = next;
    }
}

type ReloadResult = Result<u64, ServerError>;
/// One-shot mailbox a blocking requester waits on.
type DoneSlot = Arc<(Mutex<Option<ReloadResult>>, Condvar)>;

/// One queued reload request. `done` is `None` for fire-and-forget
/// requests (`SIGHUP`), `Some` when a caller is waiting for the outcome.
/// `shard` targets a single shard cell; `None` reloads everything.
struct ReloadJob {
    path: PathBuf,
    shard: Option<usize>,
    done: Option<DoneSlot>,
}

/// Client side of the reload supervisor, shared by every worker.
#[derive(Clone)]
pub struct ReloadHandle {
    queue: Arc<Bounded<ReloadJob>>,
    default_path: Option<PathBuf>,
}

impl ReloadHandle {
    /// The library file the server was started from, if it was started
    /// from a file — the target of `SIGHUP` and path-less admin reloads.
    pub fn default_path(&self) -> Option<&Path> {
        self.default_path.as_deref()
    }

    /// Submits a reload of `path` and blocks until the supervisor reports
    /// the outcome: the new generation on success, the error (with the
    /// old generation still serving) on failure. On a sharded server the
    /// shard cells move in lockstep with the global state.
    pub fn reload_blocking(&self, path: PathBuf) -> ReloadResult {
        self.submit(path, None)
    }

    /// Submits a reload of **only** `shard` from `path` and blocks for
    /// the outcome: that shard's new generation on success. The global
    /// state and every other shard are untouched either way.
    pub fn reload_shard_blocking(&self, path: PathBuf, shard: usize) -> ReloadResult {
        self.submit(path, Some(shard))
    }

    fn submit(&self, path: PathBuf, shard: Option<usize>) -> ReloadResult {
        let done: DoneSlot = Arc::new((Mutex::new(None), Condvar::new()));
        let job = ReloadJob {
            path,
            shard,
            done: Some(Arc::clone(&done)),
        };
        match self.queue.try_push(job) {
            TryPush::Admitted => {}
            TryPush::Full(_) => {
                return Err(ServerError::ReloadFailed(
                    "too many reloads already queued, try again shortly".to_owned(),
                ))
            }
            TryPush::Closed(_) => {
                return Err(ServerError::ReloadFailed(
                    "server is shutting down".to_owned(),
                ))
            }
        }
        let (slot, ready) = &*done;
        let mut outcome = slot.lock().unwrap_or_else(PoisonError::into_inner);
        let deadline = Instant::now() + MAX_RELOAD_WAIT;
        while outcome.is_none() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ServerError::ReloadFailed(
                    "reload did not finish in time; previous model keeps serving".to_owned(),
                ));
            }
            let (guard, _timed_out) = ready
                .wait_timeout(outcome, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            outcome = guard;
        }
        outcome.take().unwrap_or_else(|| {
            Err(ServerError::ReloadFailed(
                "reload outcome was lost".to_owned(),
            ))
        })
    }

    /// Closes the job queue so the supervisor drains and exits; pending
    /// jobs are still answered.
    pub(crate) fn close(&self) {
        self.queue.close();
    }
}

/// Starts the reload supervisor for `cell`. `default_path` is what
/// `SIGHUP` (and path-less admin requests) reload. Every attempt is
/// traced (load / model-build / validate spans, generation-tagged) and
/// offered to `tail` under the `reload` route, so `/debug/traces` can
/// answer "what did the last reload spend its time on".
pub(crate) fn spawn_reloader(
    cell: Arc<StateCell>,
    shutdown: Shutdown,
    default_path: Option<PathBuf>,
    tail: Arc<obs::TailSampler>,
    shards: Option<Arc<ShardSet>>,
) -> Result<(ReloadHandle, JoinHandle<()>), ServerError> {
    let queue: Arc<Bounded<ReloadJob>> = Arc::new(Bounded::new(RELOAD_QUEUE_DEPTH));
    let handle = ReloadHandle {
        queue: Arc::clone(&queue),
        default_path: default_path.clone(),
    };
    // Publish the serving generation before the supervisor thread is
    // even scheduled, so a freshly started server's gauge is never blank.
    obs::gauge(names::SERVER_MODEL_GENERATION).set(cell.load().generation() as f64);
    let thread = std::thread::Builder::new()
        .name("goalrec-reload".to_owned())
        .spawn(move || reloader_loop(cell, queue, shutdown, default_path, tail, shards))
        .map_err(|e| ServerError::Io {
            context: "spawning reload thread",
            detail: e.to_string(),
        })?;
    Ok((handle, thread))
}

/// Per-thread handles to the reload metrics, resolved once.
struct ReloadMetrics {
    attempts: Arc<obs::Counter>,
    failures: Arc<obs::Counter>,
    latency: Arc<obs::Histogram>,
    generation: Arc<obs::Gauge>,
}

impl ReloadMetrics {
    fn new() -> Self {
        ReloadMetrics {
            attempts: obs::counter(names::SERVER_RELOAD_ATTEMPTS),
            failures: obs::counter(names::SERVER_RELOAD_FAILURES),
            latency: obs::histogram_ns(names::SERVER_RELOAD_LATENCY),
            generation: obs::gauge(names::SERVER_MODEL_GENERATION),
        }
    }
}

fn reloader_loop(
    cell: Arc<StateCell>,
    queue: Arc<Bounded<ReloadJob>>,
    shutdown: Shutdown,
    default_path: Option<PathBuf>,
    tail: Arc<obs::TailSampler>,
    shards: Option<Arc<ShardSet>>,
) {
    let metrics = ReloadMetrics::new();
    metrics.generation.set(cell.load().generation() as f64);
    let mut seen_hups = shutdown::reload_signal_count();
    loop {
        match queue.pop(RELOAD_POLL) {
            Pop::Item(job) => {
                let result = match job.shard {
                    Some(shard) => {
                        attempt_shard(&cell, shards.as_deref(), &job.path, shard, &metrics, &tail)
                    }
                    None => attempt(&cell, shards.as_deref(), &job.path, &metrics, &tail),
                };
                if let Some(done) = job.done {
                    let (slot, ready) = &*done;
                    *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                    ready.notify_all();
                }
            }
            Pop::Empty => {
                let hups = shutdown::reload_signal_count();
                if hups != seen_hups {
                    seen_hups = hups;
                    match &default_path {
                        Some(path) => {
                            let _ = attempt(&cell, shards.as_deref(), path, &metrics, &tail);
                        }
                        None => eprintln!(
                            "goalrec-serve: SIGHUP received but no library file is \
                             configured; ignoring"
                        ),
                    }
                }
                if shutdown.is_set() {
                    // Stop taking new jobs; the next iterations drain
                    // whatever is already queued, then observe Closed.
                    queue.close();
                }
            }
            Pop::Closed => break,
        }
    }
}

/// One full reload attempt: build-and-validate off to the side, swap only
/// on success, roll back (i.e. do nothing) on any failure. On a sharded
/// server every sub-model is rebuilt and validated before anything swaps,
/// then the global state and all shard cells move together. The whole
/// attempt is traced under the `reload` route and retained by the tail
/// sampler.
fn attempt(
    cell: &Arc<StateCell>,
    shards: Option<&ShardSet>,
    path: &Path,
    metrics: &ReloadMetrics,
    tail: &obs::TailSampler,
) -> ReloadResult {
    metrics.attempts.inc();
    let t0 = Instant::now();
    let mut trace = obs::TraceContext::new(true);
    trace.begin(obs::fresh_trace_id(), t0);
    trace.set_route("reload");
    let loaded = load_state(cell, shards, path, &mut trace);
    metrics
        .latency
        .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    let result = match loaded {
        Ok((next, parts)) => {
            let generation = next.generation();
            cell.swap(next);
            if let (Some(set), Some(parts)) = (shards, parts) {
                set.swap_all(parts);
            }
            metrics.generation.set(generation as f64);
            trace.set_generation(generation);
            trace.finish(200);
            eprintln!(
                "goalrec-serve: reloaded {} (generation {generation}, trace {})",
                path.display(),
                trace.id()
            );
            Ok(generation)
        }
        Err(err) => {
            metrics.failures.inc();
            let serving = cell.load().generation();
            trace.set_generation(serving);
            trace.finish(500);
            eprintln!(
                "goalrec-serve: reload of {} failed ({err}); generation {serving} keeps serving",
                path.display()
            );
            Err(err)
        }
    };
    tail.offer(&trace.snapshot());
    result
}

/// One targeted attempt: rebuild a single shard's sub-model from `path`
/// and swap only that cell. The global state and every other shard are
/// untouched — a failure rolls back this one shard alone, and the
/// `server.model_generation` gauge keeps tracking the global state.
fn attempt_shard(
    cell: &Arc<StateCell>,
    shards: Option<&ShardSet>,
    path: &Path,
    shard: usize,
    metrics: &ReloadMetrics,
    tail: &obs::TailSampler,
) -> ReloadResult {
    metrics.attempts.inc();
    let t0 = Instant::now();
    let mut trace = obs::TraceContext::new(true);
    trace.begin(obs::fresh_trace_id(), t0);
    trace.set_route("reload");
    let loaded = match shards {
        Some(set) => load_shard(set, path, shard, &mut trace).map(|part| (set, part)),
        None => Err(ServerError::BadRequest(
            "this server is not sharded; reload without 'shard'".to_owned(),
        )),
    };
    metrics
        .latency
        .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    let result = match loaded {
        Ok((set, part)) => {
            let generation = set.swap_shard(shard, part);
            trace.set_generation(generation);
            trace.finish(200);
            eprintln!(
                "goalrec-serve: reloaded shard {shard} from {} (shard generation \
                 {generation}, trace {})",
                path.display(),
                trace.id()
            );
            Ok(generation)
        }
        Err(err) => {
            metrics.failures.inc();
            trace.set_generation(cell.load().generation());
            trace.finish(500);
            eprintln!(
                "goalrec-serve: shard {shard} reload of {} failed ({err}); the previous \
                 shard snapshot keeps serving",
                path.display()
            );
            Err(err)
        }
    };
    tail.offer(&trace.snapshot());
    result
}

fn load_state(
    cell: &StateCell,
    shards: Option<&ShardSet>,
    path: &Path,
    trace: &mut obs::TraceContext,
) -> Result<(Arc<AppState>, Option<Vec<ShardModel>>), ServerError> {
    // Spans close on the error paths too, so a failed attempt's trace
    // still accounts for the time the failing phase consumed.
    let load = trace.start_span(names::SPAN_RELOAD_LOAD);
    let library = goalrec_datasets::io::read_library_auto(path)
        .map_err(|e| ServerError::ReloadFailed(format!("cannot load {}: {e}", path.display())));
    trace.end_span(load);
    let library = library?;
    // Rebuild and validate every shard before the library moves into the
    // global state: a sub-model failure rolls the whole attempt back with
    // the shard cells untouched.
    let parts = match shards {
        Some(set) => Some(set.rebuild_all(&library)?),
        None => None,
    };
    let next_generation = cell.load().generation() + 1;
    let state = AppState::with_generation_traced(library, next_generation, trace)
        .map_err(|e| ServerError::ReloadFailed(format!("model rebuild failed: {e}")))?;
    let validate = trace.start_span(names::SPAN_RELOAD_VALIDATE);
    let validated = state
        .model()
        .validate()
        .map_err(|e| ServerError::ReloadFailed(format!("model failed validation: {e}")));
    trace.end_span(validate);
    validated?;
    Ok((Arc::new(state), parts))
}

fn load_shard(
    set: &ShardSet,
    path: &Path,
    shard: usize,
    trace: &mut obs::TraceContext,
) -> Result<ShardModel, ServerError> {
    let load = trace.start_span(names::SPAN_RELOAD_LOAD);
    let library = goalrec_datasets::io::read_library_auto(path)
        .map_err(|e| ServerError::ReloadFailed(format!("cannot load {}: {e}", path.display())));
    trace.end_span(load);
    let library = library?;
    // `rebuild_shard` re-partitions under the set's policy and validates
    // the target sub-model before anything is swapped.
    set.rebuild_shard(&library, shard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use goalrec_core::LibraryBuilder;

    fn library(tag: &str) -> goalrec_core::GoalLibrary {
        let mut b = LibraryBuilder::new();
        b.add_impl(&format!("goal-{tag}"), ["potatoes", "carrots"])
            .unwrap();
        b.add_impl("mash", ["potatoes", "butter"]).unwrap();
        b.build().unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("goalrec-reload-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn tail() -> Arc<obs::TailSampler> {
        Arc::new(obs::TailSampler::new(obs::TailConfig::default()))
    }

    #[test]
    fn state_cell_swaps_without_disturbing_held_arcs() {
        let cell = StateCell::new(AppState::new(library("a")).unwrap());
        let held = cell.load();
        assert_eq!(held.generation(), 1);
        cell.swap(Arc::new(
            AppState::with_generation(library("b"), 2).unwrap(),
        ));
        // The held clone still answers from generation 1...
        assert_eq!(held.generation(), 1);
        // ...while new loads see generation 2.
        assert_eq!(cell.load().generation(), 2);
    }

    #[test]
    fn successful_reload_bumps_generation_and_failure_rolls_back() {
        let good = tmp("reload-good.jsonl");
        goalrec_datasets::io::write_library_jsonl(&library("fresh"), &good).unwrap();
        let cell = Arc::new(StateCell::new(AppState::new(library("old")).unwrap()));
        let shutdown = Shutdown::new();
        let sampler = tail();
        let (handle, thread) = spawn_reloader(
            Arc::clone(&cell),
            shutdown.clone(),
            None,
            Arc::clone(&sampler),
            None,
        )
        .unwrap();

        let generation = handle.reload_blocking(good).unwrap();
        assert_eq!(generation, 2);
        assert_eq!(cell.load().generation(), 2);

        // The attempt was traced and retained: load + model-build +
        // validate spans, generation-tagged, under the `reload` route.
        let traces = sampler.snapshot(Some("reload"), None, 0);
        assert_eq!(traces.len(), 1, "one reload attempt so far");
        assert_eq!(traces[0].generation, 2);
        assert_eq!(traces[0].status, 200);
        assert!(traces[0].has_span(names::SPAN_RELOAD_LOAD));
        assert!(traces[0].has_span(names::SPAN_MODEL_BUILD));
        assert!(traces[0].has_span(names::SPAN_RELOAD_VALIDATE));

        // A missing file must fail the attempt and leave generation 2.
        let err = handle
            .reload_blocking(tmp("reload-no-such-file.jsonl"))
            .unwrap_err();
        assert!(matches!(err, ServerError::ReloadFailed(_)), "{err}");
        assert_eq!(cell.load().generation(), 2);

        // A corrupt file likewise.
        let bad = tmp("reload-corrupt.jsonl");
        std::fs::write(&bad, b"{definitely not a library}\n").unwrap();
        assert!(handle.reload_blocking(bad).is_err());
        assert_eq!(cell.load().generation(), 2);

        // Failed attempts are retained too, tagged with the generation
        // that kept serving and a 500 status.
        let failed: Vec<_> = sampler
            .snapshot(Some("reload"), None, 0)
            .into_iter()
            .filter(|t| t.status == 500)
            .collect();
        assert_eq!(failed.len(), 2);
        assert!(failed.iter().all(|t| t.generation == 2));

        shutdown.request();
        handle.close();
        let _ = thread.join();
    }

    #[test]
    fn closed_supervisor_refuses_new_reloads() {
        let cell = Arc::new(StateCell::new(AppState::new(library("x")).unwrap()));
        let shutdown = Shutdown::new();
        let (handle, thread) = spawn_reloader(cell, shutdown, None, tail(), None).unwrap();
        handle.close();
        let _ = thread.join();
        assert!(handle.reload_blocking(tmp("never.jsonl")).is_err());
    }

    #[test]
    fn sharded_reload_swaps_per_shard_and_in_lockstep() {
        let good = tmp("reload-sharded-good.jsonl");
        goalrec_datasets::io::write_library_jsonl(&library("fresh"), &good).unwrap();
        let lib = library("old");
        let set =
            Arc::new(ShardSet::build(&lib, 2, goalrec_shard::PartitionMode::HashGoal).unwrap());
        let cell = Arc::new(StateCell::new(AppState::new(lib).unwrap()));
        let shutdown = Shutdown::new();
        let (handle, thread) = spawn_reloader(
            Arc::clone(&cell),
            shutdown.clone(),
            None,
            tail(),
            Some(Arc::clone(&set)),
        )
        .unwrap();

        // A targeted reload bumps only shard 1; the global state and
        // shard 0 stay on their generations.
        let generation = handle.reload_shard_blocking(good.clone(), 1).unwrap();
        assert_eq!(generation, 2);
        assert_eq!(set.load(0).unwrap().generation(), 1);
        assert_eq!(set.load(1).unwrap().generation(), 2);
        assert_eq!(cell.load().generation(), 1);

        // An out-of-range shard is a typed error and nothing moves.
        assert!(matches!(
            handle.reload_shard_blocking(good.clone(), 9),
            Err(ServerError::BadRequest(_))
        ));
        assert_eq!(set.min_generation(), 1);

        // A failed targeted reload rolls back that shard alone.
        assert!(handle
            .reload_shard_blocking(tmp("reload-sharded-missing.jsonl"), 0)
            .is_err());
        assert_eq!(set.load(0).unwrap().generation(), 1);
        assert_eq!(set.load(1).unwrap().generation(), 2);

        // A full reload moves the global state and every shard together,
        // each shard bumping from wherever it was.
        let generation = handle.reload_blocking(good).unwrap();
        assert_eq!(generation, 2);
        assert_eq!(cell.load().generation(), 2);
        assert_eq!(set.load(0).unwrap().generation(), 2);
        assert_eq!(set.load(1).unwrap().generation(), 3);

        shutdown.request();
        handle.close();
        let _ = thread.join();
    }

    #[test]
    fn targeted_reload_on_an_unsharded_server_is_rejected() {
        let good = tmp("reload-unsharded-target.jsonl");
        goalrec_datasets::io::write_library_jsonl(&library("fresh"), &good).unwrap();
        let cell = Arc::new(StateCell::new(AppState::new(library("x")).unwrap()));
        let shutdown = Shutdown::new();
        let (handle, thread) =
            spawn_reloader(Arc::clone(&cell), shutdown.clone(), None, tail(), None).unwrap();
        assert!(matches!(
            handle.reload_shard_blocking(good, 0),
            Err(ServerError::BadRequest(_))
        ));
        assert_eq!(cell.load().generation(), 1);
        shutdown.request();
        handle.close();
        let _ = thread.join();
    }
}
