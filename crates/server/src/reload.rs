//! Hot model reload with rollback.
//!
//! The serving state lives behind a [`StateCell`] — a `RwLock` around an
//! `Arc<AppState>`. Workers `load()` one `Arc` clone per request, so a
//! request that started on generation *n* finishes on generation *n* even
//! if a swap lands mid-flight; the old state is freed when the last
//! in-flight request drops its clone.
//!
//! Reloads are serialized through a single supervisor thread:
//!
//! ```text
//!   POST /v1/admin/reload ──▶ [job queue] ──▶ reloader thread ──▶ swap
//!   SIGHUP (signal counter) ──────────────▶      │ load + validate
//!                                                └─ on error: keep old
//! ```
//!
//! An attempt loads the library file (through the fault-injectable
//! `goalrec-datasets` readers), rebuilds the model and all four
//! recommenders, and runs [`goalrec_core::GoalModel::validate`] — all
//! **off** the request path. Only a fully validated state is swapped in;
//! any failure (missing file, torn write, injected fault, corrupt model)
//! leaves the previous generation serving. The `server.reload.*` metrics
//! and the `server.model_generation` gauge record every attempt.
//!
//! On a sharded server the supervisor also owns the [`ShardSet`]: a full
//! reload rebuilds and validates **every** sub-model before swapping any
//! of them (all-or-nothing, in lockstep with the global state), and a
//! targeted `{"shard": i}` reload rebuilds and swaps cell `i` alone — a
//! failure there rolls back that one shard while every other shard keeps
//! serving untouched.
//!
//! The same supervisor thread owns the **live mutation plane**
//! ([`LivePlane`]): `POST /v1/admin/library/append` jobs are WAL-logged
//! (crash-safe, fsync-per-batch) before being staged into a fresh
//! [`DeltaSegment`] overlaid on the compiled base — no rebuild, the
//! published `AppState` shares the old compiled half. When the delta
//! crosses the configured count or age threshold the supervisor compacts
//! in the background: merge base ⊕ delta into one library, rebuild and
//! validate off to the side, persist atomically (temp + fsync + rename,
//! read-back verified), clear the WAL, and only then swap the new
//! generation in. **Any** compaction failure — torn write, injected
//! fault, validation error — leaves the old generation serving with the
//! delta and WAL intact, and retries under bounded exponential backoff.
//! Rollback is free because nothing observable mutates before the final
//! generation-atomic swap.

use crate::error::ServerError;
use crate::queue::{Bounded, Pop, TryPush};
use crate::router::AppState;
use crate::shards::ShardSet;
use crate::shutdown::{self, Shutdown};
use goalrec_core::ids::{ActionId, GoalId};
use goalrec_core::DeltaSegment;
use goalrec_datasets::wal::{AppendWal, WalEntry};
use goalrec_obs::{self as obs, names};
use goalrec_shard::ShardModel;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the supervisor blocks on its queue before re-checking the
/// `SIGHUP` counter, the shutdown token, and the compaction thresholds.
const RELOAD_POLL: Duration = Duration::from_millis(50);
/// Upper bound a caller of [`ReloadHandle::reload_blocking`] waits for
/// the supervisor to report back before giving up.
const MAX_RELOAD_WAIT: Duration = Duration::from_secs(60);
/// Pending reload requests beyond this are refused, not queued — piling
/// up identical reloads helps nobody.
const RELOAD_QUEUE_DEPTH: usize = 4;
/// First retry delay after a failed compaction; doubles per consecutive
/// failure up to [`COMPACT_BACKOFF_CAP`].
const COMPACT_BACKOFF_BASE: Duration = Duration::from_millis(250);
/// Ceiling of the compaction retry backoff.
const COMPACT_BACKOFF_CAP: Duration = Duration::from_secs(30);

/// The generation-swappable serving state.
pub struct StateCell {
    slot: RwLock<Arc<AppState>>,
}

impl StateCell {
    /// Wraps the initial state (generation 1 at startup).
    pub fn new(initial: AppState) -> Self {
        StateCell {
            slot: RwLock::new(Arc::new(initial)),
        }
    }

    /// The state serving right now. Callers hold the returned `Arc` for
    /// the duration of one request, so a concurrent swap never changes
    /// the model under a request already being answered.
    pub fn load(&self) -> Arc<AppState> {
        // A poisoned lock only means some thread panicked while holding
        // it; the Arc inside is still intact, so recover and serve.
        Arc::clone(&self.slot.read().unwrap_or_else(PoisonError::into_inner))
    }

    fn swap(&self, next: Arc<AppState>) {
        *self.slot.write().unwrap_or_else(PoisonError::into_inner) = next;
    }
}

type ReloadResult = Result<u64, ServerError>;
/// One-shot mailbox a blocking requester waits on.
type DoneSlot = Arc<(Mutex<Option<ReloadResult>>, Condvar)>;

/// What a queued supervisor job asks for.
enum JobKind {
    /// Reload the model from `path`; `shard` targets a single shard cell,
    /// `None` reloads everything.
    Reload { path: PathBuf, shard: Option<usize> },
    /// Stage validated implementations into the live delta (WAL-logged
    /// before acknowledgement).
    Append { entries: Vec<WalEntry> },
    /// Merge base ⊕ delta into a new compiled generation now, regardless
    /// of the auto-compaction thresholds.
    Compact,
}

/// One queued supervisor job. `done` is `None` for fire-and-forget
/// requests (`SIGHUP`, the file watcher), `Some` when a caller is
/// waiting for the outcome.
struct ReloadJob {
    kind: JobKind,
    done: Option<DoneSlot>,
}

/// Client side of the reload supervisor, shared by every worker.
#[derive(Clone)]
pub struct ReloadHandle {
    queue: Arc<Bounded<ReloadJob>>,
    default_path: Option<PathBuf>,
}

impl ReloadHandle {
    /// The library file the server was started from, if it was started
    /// from a file — the target of `SIGHUP` and path-less admin reloads.
    pub fn default_path(&self) -> Option<&Path> {
        self.default_path.as_deref()
    }

    /// Submits a reload of `path` and blocks until the supervisor reports
    /// the outcome: the new generation on success, the error (with the
    /// old generation still serving) on failure. On a sharded server the
    /// shard cells move in lockstep with the global state.
    pub fn reload_blocking(&self, path: PathBuf) -> ReloadResult {
        self.submit(JobKind::Reload { path, shard: None })
    }

    /// Submits a reload of **only** `shard` from `path` and blocks for
    /// the outcome: that shard's new generation on success. The global
    /// state and every other shard are untouched either way.
    pub fn reload_shard_blocking(&self, path: PathBuf, shard: usize) -> ReloadResult {
        self.submit(JobKind::Reload {
            path,
            shard: Some(shard),
        })
    }

    /// Submits a fire-and-forget reload of `path` — what the file watcher
    /// uses, since nobody is around to read the outcome. A full queue
    /// just drops the request; the next poll tick will observe the same
    /// mtime again.
    pub(crate) fn reload_async(&self, path: PathBuf) {
        let _ = self.queue.try_push(ReloadJob {
            kind: JobKind::Reload { path, shard: None },
            done: None,
        });
    }

    /// Stages `entries` into the live delta and blocks until the
    /// supervisor has WAL-logged and published them; returns the staged
    /// total after this batch. A `200` from the append route therefore
    /// means the entries survive a crash.
    pub fn append_blocking(&self, entries: Vec<WalEntry>) -> ReloadResult {
        self.submit(JobKind::Append { entries })
    }

    /// Forces a compaction now and blocks for the outcome: the new
    /// generation on success (unchanged if there was nothing staged), the
    /// error — with the old generation still serving and the delta intact
    /// — on failure.
    pub fn compact_blocking(&self) -> ReloadResult {
        self.submit(JobKind::Compact)
    }

    fn submit(&self, kind: JobKind) -> ReloadResult {
        let done: DoneSlot = Arc::new((Mutex::new(None), Condvar::new()));
        let job = ReloadJob {
            kind,
            done: Some(Arc::clone(&done)),
        };
        match self.queue.try_push(job) {
            TryPush::Admitted => {}
            TryPush::Full(_) => {
                return Err(ServerError::ReloadFailed(
                    "too many reloads already queued, try again shortly".to_owned(),
                ))
            }
            TryPush::Closed(_) => {
                return Err(ServerError::ReloadFailed(
                    "server is shutting down".to_owned(),
                ))
            }
        }
        let (slot, ready) = &*done;
        let mut outcome = slot.lock().unwrap_or_else(PoisonError::into_inner);
        let deadline = Instant::now() + MAX_RELOAD_WAIT;
        while outcome.is_none() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(ServerError::ReloadFailed(
                    "reload did not finish in time; previous model keeps serving".to_owned(),
                ));
            }
            let (guard, _timed_out) = ready
                .wait_timeout(outcome, remaining)
                .unwrap_or_else(PoisonError::into_inner);
            outcome = guard;
        }
        outcome.take().unwrap_or_else(|| {
            Err(ServerError::ReloadFailed(
                "reload outcome was lost".to_owned(),
            ))
        })
    }

    /// Closes the job queue so the supervisor drains and exits; pending
    /// jobs are still answered.
    pub(crate) fn close(&self) {
        self.queue.close();
    }
}

/// The supervisor-owned state of the live mutation plane: the write-ahead
/// log, the in-memory mirror of its acknowledged entries (the single
/// source of truth every published delta is derived from), the compaction
/// thresholds, and the failure-backoff bookkeeping.
pub(crate) struct LivePlane {
    /// Crash-safety log, sibling of the library file. `None` when the
    /// server was not started from a file — appends then live in memory
    /// only (still generation-consistent, just not crash-durable).
    wal: Option<AppendWal>,
    /// Acknowledged append entries, in acceptance order — the WAL's
    /// in-memory mirror. Every published overlay (global delta, per-shard
    /// deltas) is rebuilt from this log, so publishing is stateless.
    entries: Vec<WalEntry>,
    /// Where compaction persists the merged library (the startup library
    /// file). `None` compacts in memory only.
    persist_path: Option<PathBuf>,
    /// Auto-compact when the delta holds at least this many entries
    /// (0 disables the count trigger).
    threshold: usize,
    /// Auto-compact when the oldest staged entry is at least this old
    /// (zero disables the age trigger).
    max_age: Duration,
    /// When the oldest currently-staged entry was accepted.
    staged_since: Option<Instant>,
    /// Consecutive compaction failures since the last success.
    failures: u32,
    /// Do not retry a failed compaction before this instant.
    retry_after: Option<Instant>,
}

impl LivePlane {
    /// A plane with no WAL, no persistence, and no auto-compaction — what
    /// embedded and test servers that never append use.
    pub(crate) fn disabled() -> Self {
        LivePlane {
            wal: None,
            entries: Vec::new(),
            persist_path: None,
            threshold: 0,
            max_age: Duration::ZERO,
            staged_since: None,
            failures: 0,
            retry_after: None,
        }
    }

    /// Opens the plane for `library` (the startup file): binds the
    /// sibling WAL and replays any entries a previous process
    /// acknowledged but had not compacted before it died. Mid-file
    /// garbage is a hard error — a torn *tail* is tolerated (the crash
    /// interrupted the final write, which was never acknowledged), but
    /// corruption before the tail means the log cannot be trusted.
    pub(crate) fn boot(
        library: Option<&Path>,
        threshold: usize,
        max_age: Duration,
    ) -> Result<Self, ServerError> {
        let mut plane = LivePlane::disabled();
        plane.threshold = threshold;
        plane.max_age = max_age;
        let Some(library) = library else {
            return Ok(plane);
        };
        let wal = AppendWal::for_library(library);
        let entries = wal.replay().map_err(|e| {
            ServerError::ReloadFailed(format!(
                "cannot replay append WAL {}: {e}",
                wal.path().display()
            ))
        })?;
        if !entries.is_empty() {
            plane.staged_since = Some(Instant::now());
            eprintln!(
                "goalrec-serve: replayed {} staged append(s) from {}",
                entries.len(),
                wal.path().display()
            );
        }
        plane.entries = entries;
        plane.persist_path = Some(library.to_path_buf());
        plane.wal = Some(wal);
        Ok(plane)
    }

    /// The replayed (or staged) entries, in acceptance order.
    pub(crate) fn entries(&self) -> &[WalEntry] {
        &self.entries
    }

    /// Whether the auto-compaction thresholds say "compact now".
    fn should_compact(&self, now: Instant) -> bool {
        if self.entries.is_empty() {
            return false;
        }
        if let Some(t) = self.retry_after {
            if now < t {
                return false;
            }
        }
        let by_count = self.threshold > 0 && self.entries.len() >= self.threshold;
        let by_age = !self.max_age.is_zero()
            && self
                .staged_since
                .is_some_and(|t| now.duration_since(t) >= self.max_age);
        by_count || by_age
    }

    /// Registers a compaction failure: bounded exponential backoff.
    fn note_failure(&mut self, now: Instant) {
        self.failures = self.failures.saturating_add(1);
        let factor = 1u32 << self.failures.saturating_sub(1).min(10);
        let delay = COMPACT_BACKOFF_BASE
            .saturating_mul(factor)
            .min(COMPACT_BACKOFF_CAP);
        self.retry_after = Some(now + delay);
    }

    /// Clears the failure bookkeeping after a successful compaction.
    fn note_success(&mut self) {
        self.failures = 0;
        self.retry_after = None;
        self.staged_since = None;
    }
}

/// Derives a fresh [`DeltaSegment`] over `state`'s compiled base from the
/// acknowledged entry log and publishes it: the global cell swaps to a
/// successor sharing the compiled half, and on a sharded server every
/// shard cell republishes its own overlay of the same log. Returns the
/// staged total.
pub(crate) fn publish_staged(
    cell: &StateCell,
    shards: Option<&ShardSet>,
    entries: &[WalEntry],
) -> Result<u64, ServerError> {
    let state = cell.load();
    let mut delta = DeltaSegment::for_base(state.model());
    for (goal, actions) in entries {
        delta
            .append(
                GoalId::new(*goal),
                actions.iter().copied().map(ActionId::new).collect(),
            )
            .map_err(|e| {
                ServerError::ReloadFailed(format!("staged implementation rejected: {e}"))
            })?;
    }
    let base_total = delta.first_impl();
    let staged = u64::try_from(delta.len()).unwrap_or(u64::MAX);
    cell.swap(Arc::new(state.with_staged(Arc::new(delta))));
    if let Some(set) = shards {
        set.stage_entries(base_total, entries);
    }
    obs::gauge(names::LIBRARY_DELTA_SIZE).set(staged as f64);
    Ok(staged)
}

/// Starts the reload supervisor for `cell`. `default_path` is what
/// `SIGHUP` (and path-less admin requests) reload. Every attempt is
/// traced (load / model-build / validate spans, generation-tagged) and
/// offered to `tail` under the `reload` route, so `/debug/traces` can
/// answer "what did the last reload spend its time on". `live` is the
/// booted live mutation plane ([`LivePlane::disabled`] when the server
/// does not take appends); its replayed entries must already be staged
/// into `cell` by the caller.
pub(crate) fn spawn_reloader(
    cell: Arc<StateCell>,
    shutdown: Shutdown,
    default_path: Option<PathBuf>,
    tail: Arc<obs::TailSampler>,
    shards: Option<Arc<ShardSet>>,
    live: LivePlane,
) -> Result<(ReloadHandle, JoinHandle<()>), ServerError> {
    let queue: Arc<Bounded<ReloadJob>> = Arc::new(Bounded::new(RELOAD_QUEUE_DEPTH));
    let handle = ReloadHandle {
        queue: Arc::clone(&queue),
        default_path: default_path.clone(),
    };
    // Publish the serving generation before the supervisor thread is
    // even scheduled, so a freshly started server's gauge is never blank.
    obs::gauge(names::SERVER_MODEL_GENERATION).set(cell.load().generation() as f64);
    let thread = std::thread::Builder::new()
        .name("goalrec-reload".to_owned())
        .spawn(move || reloader_loop(cell, queue, shutdown, default_path, tail, shards, live))
        .map_err(|e| ServerError::Io {
            context: "spawning reload thread",
            detail: e.to_string(),
        })?;
    Ok((handle, thread))
}

/// Per-thread handles to the reload metrics, resolved once.
struct ReloadMetrics {
    attempts: Arc<obs::Counter>,
    failures: Arc<obs::Counter>,
    latency: Arc<obs::Histogram>,
    generation: Arc<obs::Gauge>,
    appends: Arc<obs::Counter>,
    compactions: Arc<obs::Counter>,
    compaction_failures: Arc<obs::Counter>,
    compaction_latency: Arc<obs::Histogram>,
}

impl ReloadMetrics {
    fn new() -> Self {
        ReloadMetrics {
            attempts: obs::counter(names::SERVER_RELOAD_ATTEMPTS),
            failures: obs::counter(names::SERVER_RELOAD_FAILURES),
            latency: obs::histogram_ns(names::SERVER_RELOAD_LATENCY),
            generation: obs::gauge(names::SERVER_MODEL_GENERATION),
            appends: obs::counter(names::LIBRARY_APPENDS),
            compactions: obs::counter(names::LIBRARY_COMPACTIONS),
            compaction_failures: obs::counter(names::LIBRARY_COMPACTION_FAILURES),
            compaction_latency: obs::histogram_ns(names::LIBRARY_COMPACTION_LATENCY),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn reloader_loop(
    cell: Arc<StateCell>,
    queue: Arc<Bounded<ReloadJob>>,
    shutdown: Shutdown,
    default_path: Option<PathBuf>,
    tail: Arc<obs::TailSampler>,
    shards: Option<Arc<ShardSet>>,
    mut live: LivePlane,
) {
    let metrics = ReloadMetrics::new();
    metrics.generation.set(cell.load().generation() as f64);
    let mut seen_hups = shutdown::reload_signal_count();
    loop {
        match queue.pop(RELOAD_POLL) {
            Pop::Item(job) => {
                let result = match job.kind {
                    JobKind::Reload { path, shard } => attempt_reload(
                        &cell,
                        shards.as_deref(),
                        &path,
                        shard,
                        &live,
                        &metrics,
                        &tail,
                    ),
                    JobKind::Append { entries } => {
                        attempt_append(&cell, shards.as_deref(), entries, &mut live, &metrics)
                    }
                    JobKind::Compact => {
                        attempt_compact(&cell, shards.as_deref(), &mut live, &metrics, &tail)
                    }
                };
                if let Some(done) = job.done {
                    let (slot, ready) = &*done;
                    *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
                    ready.notify_all();
                }
            }
            Pop::Empty => {
                let hups = shutdown::reload_signal_count();
                if hups != seen_hups {
                    seen_hups = hups;
                    match &default_path {
                        Some(path) => {
                            let _ = attempt_reload(
                                &cell,
                                shards.as_deref(),
                                path,
                                None,
                                &live,
                                &metrics,
                                &tail,
                            );
                        }
                        None => eprintln!(
                            "goalrec-serve: SIGHUP received but no library file is \
                             configured; ignoring"
                        ),
                    }
                }
                // Idle ticks are where the background compactor runs: the
                // delta crossed a threshold (or a failed attempt's backoff
                // expired) and no admin job is waiting.
                if live.should_compact(Instant::now()) {
                    let _ = attempt_compact(&cell, shards.as_deref(), &mut live, &metrics, &tail);
                }
                if shutdown.is_set() {
                    // Stop taking new jobs; the next iterations drain
                    // whatever is already queued, then observe Closed.
                    queue.close();
                }
            }
            Pop::Closed => break,
        }
    }
}

/// One append attempt: WAL-log the batch (fsync) so a `200` survives a
/// crash, extend the acknowledged log, and republish the overlay. The
/// compiled base is shared, so this is O(delta), never a rebuild.
fn attempt_append(
    cell: &Arc<StateCell>,
    shards: Option<&ShardSet>,
    entries: Vec<WalEntry>,
    live: &mut LivePlane,
    metrics: &ReloadMetrics,
) -> ReloadResult {
    if entries.is_empty() {
        return Ok(u64::try_from(live.entries.len()).unwrap_or(u64::MAX));
    }
    if let Some(wal) = &live.wal {
        wal.append_batch(&entries).map_err(|e| {
            ServerError::ReloadFailed(format!(
                "cannot WAL-log the append ({}): {e}; nothing was staged",
                wal.path().display()
            ))
        })?;
    }
    let accepted = entries.len();
    let before = live.entries.len();
    live.entries.extend(entries);
    match publish_staged(cell, shards, &live.entries) {
        Ok(staged) => {
            if live.staged_since.is_none() {
                live.staged_since = Some(Instant::now());
            }
            metrics
                .appends
                .inc_by(u64::try_from(accepted).unwrap_or(u64::MAX));
            Ok(staged)
        }
        Err(err) => {
            // Publishing validated entries cannot fail in practice (the
            // route validated every field); if it somehow does, drop the
            // batch from the log so memory and WAL mirror stay aligned
            // for the *accepted* prefix.
            live.entries.truncate(before);
            Err(err)
        }
    }
}

/// One compaction attempt: merge base ⊕ delta into a single library,
/// rebuild and validate the next generation off to the side, persist it
/// crash-safely (atomic temp + fsync + rename, then a read-back verify
/// through the fault-injectable reader), clear the WAL, and only then
/// swap. Every failure path returns **before** the swap, so rollback is
/// literally "do nothing": the old generation keeps serving and the
/// delta + WAL stay intact for the backoff retry.
fn attempt_compact(
    cell: &Arc<StateCell>,
    shards: Option<&ShardSet>,
    live: &mut LivePlane,
    metrics: &ReloadMetrics,
    tail: &obs::TailSampler,
) -> ReloadResult {
    let state = cell.load();
    if live.entries.is_empty() {
        return Ok(state.generation());
    }
    let t0 = Instant::now();
    let mut trace = obs::TraceContext::new(true);
    trace.begin(obs::fresh_trace_id(), t0);
    trace.set_route("compact");
    let result = compact_once(cell, shards, live, &state, &mut trace);
    metrics
        .compaction_latency
        .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    let result = match result {
        Ok(generation) => {
            live.note_success();
            metrics.compactions.inc();
            metrics.generation.set(generation as f64);
            obs::gauge(names::LIBRARY_DELTA_SIZE).set(0.0);
            trace.set_generation(generation);
            trace.finish(200);
            eprintln!(
                "goalrec-serve: compacted the live delta (generation {generation}, trace {})",
                trace.id()
            );
            Ok(generation)
        }
        Err(err) => {
            live.note_failure(Instant::now());
            metrics.compaction_failures.inc();
            let serving = state.generation();
            trace.set_generation(serving);
            trace.finish(500);
            eprintln!(
                "goalrec-serve: compaction failed ({err}); generation {serving} keeps \
                 serving with the delta intact, retry #{} backed off",
                live.failures
            );
            Err(err)
        }
    };
    tail.offer(&trace.snapshot());
    result
}

/// The fallible middle of a compaction attempt, in strict
/// merge → build/validate → persist → swap order. Returns the new
/// generation; *no* observable state mutates unless every step succeeded.
fn compact_once(
    cell: &Arc<StateCell>,
    shards: Option<&ShardSet>,
    live: &mut LivePlane,
    state: &Arc<AppState>,
    trace: &mut obs::TraceContext,
) -> ReloadResult {
    let merge = trace.start_span(names::SPAN_COMPACT_MERGE);
    let merged = state
        .live()
        .to_library()
        .map_err(|e| ServerError::ReloadFailed(format!("base ⊕ delta merge failed: {e}")));
    trace.end_span(merge);
    let merged = merged?;

    // Rebuild every shard and the global state before anything persists
    // or swaps — a validation failure rolls the whole attempt back.
    let rebuilt = match shards {
        Some(set) => Some(set.rebuild_all(&merged)?),
        None => None,
    };
    let next_generation = state.generation() + 1;
    let next = AppState::with_generation_traced(merged, next_generation, trace)
        .map_err(|e| ServerError::ReloadFailed(format!("compacted model rebuild failed: {e}")))?;
    let validate = trace.start_span(names::SPAN_RELOAD_VALIDATE);
    let validated = next
        .model()
        .validate()
        .map_err(|e| ServerError::ReloadFailed(format!("compacted model failed validation: {e}")));
    trace.end_span(validate);
    validated?;

    let persist = trace.start_span(names::SPAN_COMPACT_PERSIST);
    let persisted = persist_compacted(live, &next);
    trace.end_span(persist);
    persisted?;

    // The point of no return — and it cannot fail. Workers loading after
    // this line see the compacted base with an empty delta; workers
    // mid-request keep the base ⊕ delta snapshot they already hold.
    let swap = trace.start_span(names::SPAN_COMPACT_SWAP);
    cell.swap(Arc::new(next));
    if let Some((set, rebuilt)) = shards.zip(rebuilt) {
        set.swap_all(rebuilt);
    }
    live.entries.clear();
    trace.end_span(swap);
    Ok(next_generation)
}

/// Persists the compacted library crash-safely and clears the WAL. The
/// atomic write goes through `goalrec-datasets` (temp sibling + fsync +
/// rename + directory sync) and the read-back verify re-reads the renamed
/// file through the fault-injectable reader — a torn or corrupted persist
/// fails *here*, before anything swapped.
fn persist_compacted(live: &LivePlane, next: &AppState) -> Result<(), ServerError> {
    let Some(path) = &live.persist_path else {
        // In-memory server: compaction still swaps generations, there is
        // just nothing to persist (and no WAL to clear).
        return Ok(());
    };
    // Match the serving file's format (the loaders dispatch on the
    // version stamp, so what we write here is what the next reload — and
    // the read-back verify below — will parse).
    if path.extension().is_some_and(|e| e == "grlb2") {
        // GRLB v2 target: persist the compacted *model* sections directly
        // (no library materialisation), then re-read through the full
        // validate-before-trust pipeline so a torn persist fails here.
        goalrec_datasets::grlb2::write_model_v2(next.model(), path).map_err(|e| {
            ServerError::ReloadFailed(format!(
                "cannot persist the compacted model to {}: {e}",
                path.display()
            ))
        })?;
        let reread = goalrec_datasets::grlb2::read_model_v2(path).map_err(|e| {
            ServerError::ReloadFailed(format!(
                "read-back verify of {} failed: {e}",
                path.display()
            ))
        })?;
        if reread.num_impls() != next.model().num_impls() {
            return Err(ServerError::ReloadFailed(format!(
                "read-back verify of {} found {} implementations, expected {}",
                path.display(),
                reread.num_impls(),
                next.model().num_impls()
            )));
        }
    } else {
        let write = if path.extension().is_some_and(|e| e == "grlb") {
            goalrec_datasets::binary::write_library_binary
        } else {
            goalrec_datasets::io::write_library_jsonl
        };
        write(next.library()?, path).map_err(|e| {
            ServerError::ReloadFailed(format!(
                "cannot persist the compacted library to {}: {e}",
                path.display()
            ))
        })?;
        let reread = goalrec_datasets::io::read_library_auto(path).map_err(|e| {
            ServerError::ReloadFailed(format!(
                "read-back verify of {} failed: {e}",
                path.display()
            ))
        })?;
        if reread.len() != next.library()?.len() {
            return Err(ServerError::ReloadFailed(format!(
                "read-back verify of {} found {} implementations, expected {}",
                path.display(),
                reread.len(),
                next.library()?.len()
            )));
        }
    }
    if let Some(wal) = &live.wal {
        wal.clear().map_err(|e| {
            ServerError::ReloadFailed(format!(
                "cannot clear the append WAL {}: {e}",
                wal.path().display()
            ))
        })?;
    }
    Ok(())
}

/// A reload attempt that respects the live plane: after a successful
/// swap the surviving staged entries are re-derived onto the freshly
/// reloaded base (append entries are raw `(goal, actions)` ids, so they
/// re-stage onto *any* base), keeping uncompacted appends visible across
/// reloads. The re-stage of already-validated entries cannot fail in
/// practice; if it does, the reload itself still stands.
#[allow(clippy::too_many_arguments)]
fn attempt_reload(
    cell: &Arc<StateCell>,
    shards: Option<&ShardSet>,
    path: &Path,
    shard: Option<usize>,
    live: &LivePlane,
    metrics: &ReloadMetrics,
    tail: &obs::TailSampler,
) -> ReloadResult {
    let result = match shard {
        Some(shard) => attempt_shard(cell, shards, path, shard, metrics, tail),
        None => attempt(cell, shards, path, metrics, tail),
    };
    if result.is_ok() && !live.entries.is_empty() {
        if let Err(err) = publish_staged(cell, shards, &live.entries) {
            eprintln!("goalrec-serve: could not re-stage the live delta after reload: {err}");
        }
    }
    result
}

/// One full reload attempt: build-and-validate off to the side, swap only
/// on success, roll back (i.e. do nothing) on any failure. On a sharded
/// server every sub-model is rebuilt and validated before anything swaps,
/// then the global state and all shard cells move together. The whole
/// attempt is traced under the `reload` route and retained by the tail
/// sampler.
fn attempt(
    cell: &Arc<StateCell>,
    shards: Option<&ShardSet>,
    path: &Path,
    metrics: &ReloadMetrics,
    tail: &obs::TailSampler,
) -> ReloadResult {
    metrics.attempts.inc();
    let t0 = Instant::now();
    let mut trace = obs::TraceContext::new(true);
    trace.begin(obs::fresh_trace_id(), t0);
    trace.set_route("reload");
    let loaded = load_state(cell, shards, path, &mut trace);
    metrics
        .latency
        .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    let result = match loaded {
        Ok((next, parts)) => {
            let generation = next.generation();
            cell.swap(next);
            if let (Some(set), Some(parts)) = (shards, parts) {
                set.swap_all(parts);
            }
            metrics.generation.set(generation as f64);
            trace.set_generation(generation);
            trace.finish(200);
            eprintln!(
                "goalrec-serve: reloaded {} (generation {generation}, trace {})",
                path.display(),
                trace.id()
            );
            Ok(generation)
        }
        Err(err) => {
            metrics.failures.inc();
            let serving = cell.load().generation();
            trace.set_generation(serving);
            trace.finish(500);
            eprintln!(
                "goalrec-serve: reload of {} failed ({err}); generation {serving} keeps serving",
                path.display()
            );
            Err(err)
        }
    };
    tail.offer(&trace.snapshot());
    result
}

/// One targeted attempt: rebuild a single shard's sub-model from `path`
/// and swap only that cell. The global state and every other shard are
/// untouched — a failure rolls back this one shard alone, and the
/// `server.model_generation` gauge keeps tracking the global state.
fn attempt_shard(
    cell: &Arc<StateCell>,
    shards: Option<&ShardSet>,
    path: &Path,
    shard: usize,
    metrics: &ReloadMetrics,
    tail: &obs::TailSampler,
) -> ReloadResult {
    metrics.attempts.inc();
    let t0 = Instant::now();
    let mut trace = obs::TraceContext::new(true);
    trace.begin(obs::fresh_trace_id(), t0);
    trace.set_route("reload");
    let loaded = match shards {
        Some(set) => load_shard(set, path, shard, &mut trace).map(|part| (set, part)),
        None => Err(ServerError::BadRequest(
            "this server is not sharded; reload without 'shard'".to_owned(),
        )),
    };
    metrics
        .latency
        .record(u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX));
    let result = match loaded {
        Ok((set, part)) => {
            let generation = set.swap_shard(shard, part);
            trace.set_generation(generation);
            trace.finish(200);
            eprintln!(
                "goalrec-serve: reloaded shard {shard} from {} (shard generation \
                 {generation}, trace {})",
                path.display(),
                trace.id()
            );
            Ok(generation)
        }
        Err(err) => {
            metrics.failures.inc();
            trace.set_generation(cell.load().generation());
            trace.finish(500);
            eprintln!(
                "goalrec-serve: shard {shard} reload of {} failed ({err}); the previous \
                 shard snapshot keeps serving",
                path.display()
            );
            Err(err)
        }
    };
    tail.offer(&trace.snapshot());
    result
}

fn load_state(
    cell: &StateCell,
    shards: Option<&ShardSet>,
    path: &Path,
    trace: &mut obs::TraceContext,
) -> Result<(Arc<AppState>, Option<crate::shards::RebuiltShards>), ServerError> {
    // GRLB v2 fast path: the reader hands back an already-trusted model
    // (header → layout → checksums → structural pass, mapped in place
    // when the platform allows), so the whole load is the header parse
    // plus one sequential checksum scan — no JSON parse, no CSR rebuild,
    // and no separate validate span.
    if goalrec_datasets::io::is_binary_library(path)
        && matches!(goalrec_datasets::binary::sniff_version(path), Ok(2))
    {
        let load = trace.start_span(names::SPAN_RELOAD_LOAD);
        let model = goalrec_datasets::grlb2::read_model_v2(path)
            .map_err(|e| ServerError::ReloadFailed(format!("cannot load {}: {e}", path.display())));
        trace.end_span(load);
        let model = model?;
        // Sharded servers partition by library; derive it from the model
        // (synthetic names, identical ids — partitioning only reads ids).
        let parts = match shards {
            Some(set) => {
                let library = model.to_library().map_err(|e| {
                    ServerError::ReloadFailed(format!(
                        "cannot derive a library from {}: {e}",
                        path.display()
                    ))
                })?;
                Some(set.rebuild_all(&library)?)
            }
            None => None,
        };
        let next_generation = cell.load().generation() + 1;
        let state = AppState::from_model_traced(model, next_generation, trace)
            .map_err(|e| ServerError::ReloadFailed(format!("model rebuild failed: {e}")))?;
        return Ok((Arc::new(state), parts));
    }
    // Spans close on the error paths too, so a failed attempt's trace
    // still accounts for the time the failing phase consumed.
    let load = trace.start_span(names::SPAN_RELOAD_LOAD);
    let library = goalrec_datasets::io::read_library_auto(path)
        .map_err(|e| ServerError::ReloadFailed(format!("cannot load {}: {e}", path.display())));
    trace.end_span(load);
    let library = library?;
    // Rebuild and validate every shard before the library moves into the
    // global state: a sub-model failure rolls the whole attempt back with
    // the shard cells untouched.
    let parts = match shards {
        Some(set) => Some(set.rebuild_all(&library)?),
        None => None,
    };
    let next_generation = cell.load().generation() + 1;
    let state = AppState::with_generation_traced(library, next_generation, trace)
        .map_err(|e| ServerError::ReloadFailed(format!("model rebuild failed: {e}")))?;
    let validate = trace.start_span(names::SPAN_RELOAD_VALIDATE);
    let validated = state
        .model()
        .validate()
        .map_err(|e| ServerError::ReloadFailed(format!("model failed validation: {e}")));
    trace.end_span(validate);
    validated?;
    Ok((Arc::new(state), parts))
}

fn load_shard(
    set: &ShardSet,
    path: &Path,
    shard: usize,
    trace: &mut obs::TraceContext,
) -> Result<ShardModel, ServerError> {
    let load = trace.start_span(names::SPAN_RELOAD_LOAD);
    let library = goalrec_datasets::io::read_library_auto(path)
        .map_err(|e| ServerError::ReloadFailed(format!("cannot load {}: {e}", path.display())));
    trace.end_span(load);
    let library = library?;
    // `rebuild_shard` re-partitions under the set's policy and validates
    // the target sub-model before anything is swapped.
    set.rebuild_shard(&library, shard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use goalrec_core::LibraryBuilder;

    fn library(tag: &str) -> goalrec_core::GoalLibrary {
        let mut b = LibraryBuilder::new();
        b.add_impl(&format!("goal-{tag}"), ["potatoes", "carrots"])
            .unwrap();
        b.add_impl("mash", ["potatoes", "butter"]).unwrap();
        b.build().unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("goalrec-reload-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn tail() -> Arc<obs::TailSampler> {
        Arc::new(obs::TailSampler::new(obs::TailConfig::default()))
    }

    #[test]
    fn state_cell_swaps_without_disturbing_held_arcs() {
        let cell = StateCell::new(AppState::new(library("a")).unwrap());
        let held = cell.load();
        assert_eq!(held.generation(), 1);
        cell.swap(Arc::new(
            AppState::with_generation(library("b"), 2).unwrap(),
        ));
        // The held clone still answers from generation 1...
        assert_eq!(held.generation(), 1);
        // ...while new loads see generation 2.
        assert_eq!(cell.load().generation(), 2);
    }

    #[test]
    fn successful_reload_bumps_generation_and_failure_rolls_back() {
        let good = tmp("reload-good.jsonl");
        goalrec_datasets::io::write_library_jsonl(&library("fresh"), &good).unwrap();
        let cell = Arc::new(StateCell::new(AppState::new(library("old")).unwrap()));
        let shutdown = Shutdown::new();
        let sampler = tail();
        let (handle, thread) = spawn_reloader(
            Arc::clone(&cell),
            shutdown.clone(),
            None,
            Arc::clone(&sampler),
            None,
            LivePlane::disabled(),
        )
        .unwrap();

        let generation = handle.reload_blocking(good).unwrap();
        assert_eq!(generation, 2);
        assert_eq!(cell.load().generation(), 2);

        // The attempt was traced and retained: load + model-build +
        // validate spans, generation-tagged, under the `reload` route.
        let traces = sampler.snapshot(Some("reload"), None, 0);
        assert_eq!(traces.len(), 1, "one reload attempt so far");
        assert_eq!(traces[0].generation, 2);
        assert_eq!(traces[0].status, 200);
        assert!(traces[0].has_span(names::SPAN_RELOAD_LOAD));
        assert!(traces[0].has_span(names::SPAN_MODEL_BUILD));
        assert!(traces[0].has_span(names::SPAN_RELOAD_VALIDATE));

        // A missing file must fail the attempt and leave generation 2.
        let err = handle
            .reload_blocking(tmp("reload-no-such-file.jsonl"))
            .unwrap_err();
        assert!(matches!(err, ServerError::ReloadFailed(_)), "{err}");
        assert_eq!(cell.load().generation(), 2);

        // A corrupt file likewise.
        let bad = tmp("reload-corrupt.jsonl");
        std::fs::write(&bad, b"{definitely not a library}\n").unwrap();
        assert!(handle.reload_blocking(bad).is_err());
        assert_eq!(cell.load().generation(), 2);

        // Failed attempts are retained too, tagged with the generation
        // that kept serving and a 500 status.
        let failed: Vec<_> = sampler
            .snapshot(Some("reload"), None, 0)
            .into_iter()
            .filter(|t| t.status == 500)
            .collect();
        assert_eq!(failed.len(), 2);
        assert!(failed.iter().all(|t| t.generation == 2));

        shutdown.request();
        handle.close();
        let _ = thread.join();
    }

    #[test]
    fn closed_supervisor_refuses_new_reloads() {
        let cell = Arc::new(StateCell::new(AppState::new(library("x")).unwrap()));
        let shutdown = Shutdown::new();
        let (handle, thread) =
            spawn_reloader(cell, shutdown, None, tail(), None, LivePlane::disabled()).unwrap();
        handle.close();
        let _ = thread.join();
        assert!(handle.reload_blocking(tmp("never.jsonl")).is_err());
    }

    #[test]
    fn sharded_reload_swaps_per_shard_and_in_lockstep() {
        let good = tmp("reload-sharded-good.jsonl");
        goalrec_datasets::io::write_library_jsonl(&library("fresh"), &good).unwrap();
        let lib = library("old");
        let set =
            Arc::new(ShardSet::build(&lib, 2, goalrec_shard::PartitionMode::HashGoal).unwrap());
        let cell = Arc::new(StateCell::new(AppState::new(lib).unwrap()));
        let shutdown = Shutdown::new();
        let (handle, thread) = spawn_reloader(
            Arc::clone(&cell),
            shutdown.clone(),
            None,
            tail(),
            Some(Arc::clone(&set)),
            LivePlane::disabled(),
        )
        .unwrap();

        // A targeted reload bumps only shard 1; the global state and
        // shard 0 stay on their generations.
        let generation = handle.reload_shard_blocking(good.clone(), 1).unwrap();
        assert_eq!(generation, 2);
        assert_eq!(set.load(0).unwrap().generation(), 1);
        assert_eq!(set.load(1).unwrap().generation(), 2);
        assert_eq!(cell.load().generation(), 1);

        // An out-of-range shard is a typed error and nothing moves.
        assert!(matches!(
            handle.reload_shard_blocking(good.clone(), 9),
            Err(ServerError::BadRequest(_))
        ));
        assert_eq!(set.min_generation(), 1);

        // A failed targeted reload rolls back that shard alone.
        assert!(handle
            .reload_shard_blocking(tmp("reload-sharded-missing.jsonl"), 0)
            .is_err());
        assert_eq!(set.load(0).unwrap().generation(), 1);
        assert_eq!(set.load(1).unwrap().generation(), 2);

        // A full reload moves the global state and every shard together,
        // each shard bumping from wherever it was.
        let generation = handle.reload_blocking(good).unwrap();
        assert_eq!(generation, 2);
        assert_eq!(cell.load().generation(), 2);
        assert_eq!(set.load(0).unwrap().generation(), 2);
        assert_eq!(set.load(1).unwrap().generation(), 3);

        shutdown.request();
        handle.close();
        let _ = thread.join();
    }

    #[test]
    fn v2_reload_takes_the_fast_path_and_serves_identically() {
        use goalrec_core::strategies::default_strategies;
        let lib = library("fresh");
        let built = goalrec_core::GoalModel::build(&lib).unwrap();
        let model_path = tmp("reload-fast.grlb2");
        goalrec_datasets::grlb2::write_model_v2(&built, &model_path).unwrap();

        let cell = Arc::new(StateCell::new(AppState::new(library("old")).unwrap()));
        let shutdown = Shutdown::new();
        let sampler = tail();
        let (handle, thread) = spawn_reloader(
            Arc::clone(&cell),
            shutdown.clone(),
            None,
            Arc::clone(&sampler),
            None,
            LivePlane::disabled(),
        )
        .unwrap();

        let generation = handle.reload_blocking(model_path.clone()).unwrap();
        assert_eq!(generation, 2);
        let st = cell.load();
        if goalrec_datasets::mmap::mmap_supported() {
            assert!(st.model().is_mapped(), "v2 reload must serve the mapped file");
        }

        // The reader already proved header + checksums + structure, so the
        // fast path records no separate validate span — that skipped work
        // *is* the reload speedup.
        let traces = sampler.snapshot(Some("reload"), None, 0);
        assert_eq!(traces.len(), 1);
        assert!(traces[0].has_span(names::SPAN_RELOAD_LOAD));
        assert!(!traces[0].has_span(names::SPAN_RELOAD_VALIDATE));

        // Bit-identical serving: every strategy ranks the mapped model
        // exactly as it ranks the heap-built original.
        let h = goalrec_core::Activity::from_raw([0u32, 1]);
        for s in default_strategies() {
            assert_eq!(s.rank(st.model(), &h, 5), s.rank(&built, &h, 5), "{}", s.name());
        }
        // Display names degrade to the synthetic ids a v2 file can store.
        assert_eq!(st.action_name(ActionId::new(0)), "a0");
        assert_eq!(st.library().unwrap().len(), built.num_impls());

        // A corrupted v2 file is rejected before anything swaps.
        let mut bytes = std::fs::read(&model_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let bad = tmp("reload-fast-corrupt.grlb2");
        std::fs::write(&bad, &bytes).unwrap();
        assert!(matches!(
            handle.reload_blocking(bad),
            Err(ServerError::ReloadFailed(_))
        ));
        assert_eq!(cell.load().generation(), 2);

        shutdown.request();
        handle.close();
        let _ = thread.join();
    }

    #[test]
    fn compaction_persists_v2_when_the_library_file_is_grlb2() {
        let path = tmp("live-compact.grlb2");
        let lib = library("base");
        let built = goalrec_core::GoalModel::build(&lib).unwrap();
        goalrec_datasets::grlb2::write_model_v2(&built, &path).unwrap();
        let _ = std::fs::remove_file(AppendWal::for_library(&path).path());
        // Boot the way the server does: the file read through the
        // version-dispatching loader.
        let booted = goalrec_datasets::io::read_library_auto(&path).unwrap();
        let cell = Arc::new(StateCell::new(AppState::new(booted).unwrap()));
        let shutdown = Shutdown::new();
        let live = LivePlane::boot(Some(&path), 0, Duration::ZERO).unwrap();
        let (handle, thread) = spawn_reloader(
            Arc::clone(&cell),
            shutdown.clone(),
            Some(path.clone()),
            tail(),
            None,
            live,
        )
        .unwrap();

        let base_impls = built.num_impls();
        handle.append_blocking(vec![(0, vec![0, 1])]).unwrap();
        let generation = handle.compact_blocking().unwrap();
        assert_eq!(generation, 2);

        // The compacted model went to disk as GRLB v2 (not a library
        // stream), so the *next* cold start is a mapped fast-path load.
        assert_eq!(
            goalrec_datasets::binary::sniff_version(&path).unwrap(),
            2,
            "compaction must persist v2 to a .grlb2 target"
        );
        let reread = goalrec_datasets::grlb2::read_model_v2(&path).unwrap();
        assert_eq!(reread.num_impls(), base_impls + 1);
        assert!(AppendWal::for_library(&path).replay().unwrap().is_empty());

        // And a reload of the file the compaction just wrote works — the
        // post-compaction lifecycle is fully v2.
        assert_eq!(handle.reload_blocking(path).unwrap(), 3);
        if goalrec_datasets::mmap::mmap_supported() {
            assert!(cell.load().model().is_mapped());
        }

        shutdown.request();
        handle.close();
        let _ = thread.join();
    }

    /// Boots a WAL-backed plane over a fresh library file and a running
    /// supervisor; manual compaction only (both auto thresholds off).
    fn live_fixture(
        name: &str,
    ) -> (
        PathBuf,
        Arc<StateCell>,
        Shutdown,
        ReloadHandle,
        JoinHandle<()>,
    ) {
        let path = tmp(name);
        let lib = library("base");
        goalrec_datasets::io::write_library_jsonl(&lib, &path).unwrap();
        // A stale WAL from a previous test run must not leak in.
        let _ = std::fs::remove_file(AppendWal::for_library(&path).path());
        let cell = Arc::new(StateCell::new(AppState::new(lib).unwrap()));
        let shutdown = Shutdown::new();
        let live = LivePlane::boot(Some(&path), 0, Duration::ZERO).unwrap();
        let (handle, thread) = spawn_reloader(
            Arc::clone(&cell),
            shutdown.clone(),
            Some(path.clone()),
            tail(),
            None,
            live,
        )
        .unwrap();
        (path, cell, shutdown, handle, thread)
    }

    #[test]
    fn append_stages_without_a_generation_bump_and_compaction_folds_in() {
        let (path, cell, shutdown, handle, thread) = live_fixture("live-append.jsonl");
        let base_impls = cell.load().library().unwrap().len();

        // Two appends: the second extends both id spaces past the base.
        let staged = handle.append_blocking(vec![(0, vec![0, 1])]).unwrap();
        assert_eq!(staged, 1);
        let staged = handle.append_blocking(vec![(5, vec![2, 9])]).unwrap();
        assert_eq!(staged, 2);
        let st = cell.load();
        assert_eq!(st.delta_len(), 2);
        assert_eq!(st.generation(), 1, "appends must not mint a generation");
        // The WAL holds both acknowledged entries, replayable.
        let wal = AppendWal::for_library(&path);
        assert_eq!(wal.replay().unwrap().len(), 2);

        // Compaction folds the delta into a new compiled generation…
        let generation = handle.compact_blocking().unwrap();
        assert_eq!(generation, 2);
        let st = cell.load();
        assert_eq!(st.generation(), 2);
        assert_eq!(
            st.delta_len(),
            0,
            "the delta must be empty after compaction"
        );
        assert_eq!(st.library().unwrap().len(), base_impls + 2);
        // …persists the merged library crash-safely…
        let merged = goalrec_datasets::io::read_library_auto(&path).unwrap();
        assert_eq!(merged.len(), base_impls + 2);
        // …and clears the WAL.
        assert!(wal.replay().unwrap().is_empty());

        // Compacting an empty delta is a no-op at the same generation.
        assert_eq!(handle.compact_blocking().unwrap(), 2);

        shutdown.request();
        handle.close();
        let _ = thread.join();
    }

    #[test]
    fn replayed_wal_entries_are_restaged_at_boot() {
        let path = tmp("live-replay.jsonl");
        let lib = library("base");
        goalrec_datasets::io::write_library_jsonl(&lib, &path).unwrap();
        let wal = AppendWal::for_library(&path);
        let _ = std::fs::remove_file(wal.path());
        // A "previous process" acknowledged two appends, then died before
        // compacting.
        wal.append_batch(&[(1, vec![0, 2]), (3, vec![1])]).unwrap();

        let live = LivePlane::boot(Some(&path), 0, Duration::ZERO).unwrap();
        assert_eq!(live.entries().len(), 2);
        // What lib.rs does at startup: stage the replayed entries before
        // the server takes traffic.
        let cell = Arc::new(StateCell::new(AppState::new(lib).unwrap()));
        let staged = publish_staged(&cell, None, live.entries()).unwrap();
        assert_eq!(staged, 2);
        assert_eq!(cell.load().delta_len(), 2);
        assert_eq!(cell.load().generation(), 1);
    }

    #[test]
    fn wal_garbage_is_a_hard_boot_error() {
        let path = tmp("live-garbage.jsonl");
        goalrec_datasets::io::write_library_jsonl(&library("base"), &path).unwrap();
        let wal = AppendWal::for_library(&path);
        std::fs::write(
            wal.path(),
            b"{\"goal\": oops}\n{\"goal\": 1, \"actions\": [2]}\n",
        )
        .unwrap();
        assert!(matches!(
            LivePlane::boot(Some(&path), 0, Duration::ZERO),
            Err(ServerError::ReloadFailed(_))
        ));
        let _ = std::fs::remove_file(wal.path());
    }

    #[test]
    fn reload_restages_the_live_delta_onto_the_new_base() {
        let (path, cell, shutdown, handle, thread) = live_fixture("live-reload.jsonl");
        handle.append_blocking(vec![(2, vec![0, 1])]).unwrap();
        assert_eq!(cell.load().delta_len(), 1);

        // A full reload of the (unchanged) library file swaps a fresh
        // base in; the staged entry must survive on top of it.
        let generation = handle.reload_blocking(path.clone()).unwrap();
        assert_eq!(generation, 2);
        let st = cell.load();
        assert_eq!(st.generation(), 2);
        assert_eq!(st.delta_len(), 1, "the delta must survive a reload");

        // And it still compacts cleanly afterwards.
        assert_eq!(handle.compact_blocking().unwrap(), 3);
        assert_eq!(cell.load().delta_len(), 0);

        shutdown.request();
        handle.close();
        let _ = thread.join();
    }

    #[test]
    fn faulted_compactions_roll_back_and_a_clean_retry_succeeds() {
        let (path, cell, shutdown, handle, thread) = live_fixture("live-faulted.jsonl");
        let base_impls = cell.load().library().unwrap().len();
        handle.append_blocking(vec![(0, vec![1, 2])]).unwrap();

        let compaction_failures = obs::counter(names::LIBRARY_COMPACTION_FAILURES);
        let failures_before = compaction_failures.get();
        // Three consecutive faulted compactions: a write error at
        // persist, a torn write at persist, a read error on the
        // read-back verify. Every one must roll back completely.
        let plans = [
            goalrec_faults::FaultPlan::new()
                .for_paths("live-faulted.jsonl")
                .with(
                    goalrec_faults::FaultKind::WriteError,
                    goalrec_faults::Trigger::OpCount(1),
                ),
            goalrec_faults::FaultPlan::new()
                .for_paths("live-faulted.jsonl")
                .with(
                    goalrec_faults::FaultKind::TornWrite,
                    goalrec_faults::Trigger::ByteOffset(8),
                ),
            goalrec_faults::FaultPlan::new()
                .for_paths("live-faulted.jsonl")
                .with(
                    goalrec_faults::FaultKind::ReadError,
                    goalrec_faults::Trigger::OpCount(1),
                ),
        ];
        for plan in plans {
            let err = goalrec_faults::with_plan(plan, || handle.compact_blocking()).unwrap_err();
            assert!(matches!(err, ServerError::ReloadFailed(_)), "{err}");
            let st = cell.load();
            assert_eq!(st.generation(), 1, "old generation must keep serving");
            assert_eq!(st.delta_len(), 1, "the delta must stay intact");
            // The WAL still carries the staged entry for the retry.
            assert_eq!(
                AppendWal::for_library(&path).replay().unwrap().len(),
                1,
                "the WAL must survive a faulted compaction"
            );
            // The library file on disk is never torn: either untouched
            // (persist failed before the rename) or atomically replaced
            // with the full merged library (the fault hit the read-back
            // verify, after the rename).
            let on_disk = goalrec_datasets::io::read_library_auto(&path).unwrap();
            assert!(
                on_disk.len() == base_impls || on_disk.len() == base_impls + 1,
                "on-disk library must be the base or the merged library, got {}",
                on_disk.len()
            );
        }
        assert_eq!(compaction_failures.get(), failures_before + 3);

        // A clean retry (faults disarmed) compacts and bumps the
        // generation exactly once.
        let generation = handle.compact_blocking().unwrap();
        assert_eq!(generation, 2);
        assert_eq!(cell.load().delta_len(), 0);
        assert_eq!(
            goalrec_datasets::io::read_library_auto(&path)
                .unwrap()
                .len(),
            base_impls + 1
        );
        assert!(AppendWal::for_library(&path).replay().unwrap().is_empty());

        shutdown.request();
        handle.close();
        let _ = thread.join();
    }

    #[test]
    fn compaction_backoff_gates_the_auto_trigger() {
        let mut plane = LivePlane::disabled();
        plane.threshold = 1;
        plane.entries.push((0, vec![1]));
        let now = Instant::now();
        assert!(plane.should_compact(now), "threshold crossed");
        plane.note_failure(now);
        assert!(
            !plane.should_compact(now),
            "a fresh failure must back the retry off"
        );
        assert!(
            plane.should_compact(now + Duration::from_secs(60)),
            "the backoff must expire"
        );
        // Backoff grows but stays bounded.
        for _ in 0..20 {
            plane.note_failure(now);
        }
        let retry = plane.retry_after.unwrap();
        assert!(retry <= now + COMPACT_BACKOFF_CAP);
        plane.note_success();
        assert!(plane.retry_after.is_none());
        assert_eq!(plane.failures, 0);
    }

    #[test]
    fn sharded_appends_route_to_the_owning_shard_and_compact_in_lockstep() {
        let path = tmp("live-sharded.jsonl");
        let lib = library("base");
        goalrec_datasets::io::write_library_jsonl(&lib, &path).unwrap();
        let _ = std::fs::remove_file(AppendWal::for_library(&path).path());
        let set =
            Arc::new(ShardSet::build(&lib, 2, goalrec_shard::PartitionMode::HashGoal).unwrap());
        let cell = Arc::new(StateCell::new(AppState::new(lib).unwrap()));
        let shutdown = Shutdown::new();
        let live = LivePlane::boot(Some(&path), 0, Duration::ZERO).unwrap();
        let (handle, thread) = spawn_reloader(
            Arc::clone(&cell),
            shutdown.clone(),
            Some(path.clone()),
            tail(),
            Some(Arc::clone(&set)),
            live,
        )
        .unwrap();

        // Each staged goal lands in exactly one shard's delta.
        handle
            .append_blocking(vec![(0, vec![0, 1]), (1, vec![1, 2]), (7, vec![0, 2])])
            .unwrap();
        let staged_total: usize = (0..set.num_shards())
            .map(|i| set.load(i).unwrap().staged_len())
            .sum();
        assert_eq!(
            staged_total, 3,
            "every entry must land in exactly one shard"
        );
        for (g, expect_owner) in [
            (0u32, set.owner_of(0)),
            (1, set.owner_of(1)),
            (7, set.owner_of(7)),
        ] {
            let snap = set.load(expect_owner).unwrap();
            assert!(
                snap.staged_len() > 0,
                "goal {g}'s owner shard {expect_owner} must hold staged entries"
            );
        }

        // Compaction swaps the global state and every shard together and
        // clears the per-shard deltas.
        let generation = handle.compact_blocking().unwrap();
        assert_eq!(generation, 2);
        assert_eq!(cell.load().delta_len(), 0);
        for i in 0..set.num_shards() {
            assert_eq!(set.load(i).unwrap().staged_len(), 0, "shard {i}");
        }
        assert_eq!(set.min_generation(), 2);

        shutdown.request();
        handle.close();
        let _ = thread.join();
    }

    #[test]
    fn targeted_reload_on_an_unsharded_server_is_rejected() {
        let good = tmp("reload-unsharded-target.jsonl");
        goalrec_datasets::io::write_library_jsonl(&library("fresh"), &good).unwrap();
        let cell = Arc::new(StateCell::new(AppState::new(library("x")).unwrap()));
        let shutdown = Shutdown::new();
        let (handle, thread) = spawn_reloader(
            Arc::clone(&cell),
            shutdown.clone(),
            None,
            tail(),
            None,
            LivePlane::disabled(),
        )
        .unwrap();
        assert!(matches!(
            handle.reload_shard_blocking(good, 0),
            Err(ServerError::BadRequest(_))
        ));
        assert_eq!(cell.load().generation(), 1);
        shutdown.request();
        handle.close();
        let _ = thread.join();
    }
}
