//! Route dispatch: maps parsed requests onto the serving API.
//!
//! Endpoints:
//!
//! | Route | Method | Response |
//! |---|---|---|
//! | `/healthz` | GET | `{"status", "generation", "model_age_ms"}` liveness JSON |
//! | `/metrics` | GET | `goalrec-obs` snapshot, text form |
//! | `/v1/stats` | GET | [`StatsReport`] JSON (same shape as `goalrec stats --json`) |
//! | `/v1/recommend` | POST | ranked actions for an activity |
//! | `/v1/admin/reload` | POST | hot-swap the model from `{"path": …, "shard": …}` (or the startup file) |
//! | `/v1/admin/library/append` | POST | stage implementations into the live delta (`{"goal", "actions"}` or `{"implementations": […]}`) |
//!
//! The recommend body is `{"activity": [u32, …], "strategy": "breadth" |
//! "best-match" | "focus-cmp" | "focus-cl", "k": usize}` with `strategy`
//! and `k` optional. Every handler returns `Result<Response, ServerError>`
//! and the connection layer turns errors into their status-coded JSON
//! envelopes, so nothing in here can abort a worker.
//!
//! Workers hand requests to [`handle`] with a [`ServeCtx`] and their own
//! [`WorkerArena`]; the handler loads one [`AppState`] snapshot up
//! front, so a hot reload landing mid-request never changes the model a
//! request is being answered from, and the ranking pass reuses the
//! worker's arena so steady-state recommends never touch the allocator.
//!
//! When the context carries a [`ShardSet`] (`--shards N`), the recommend
//! route scatters across per-shard snapshots and k-way merges instead of
//! ranking the global model — same wire shape, bit-identical results —
//! and `/healthz` + `/v1/stats` report the per-shard generation vector.

use crate::debug::InflightRegistry;
use crate::error::ServerError;
use crate::http::{Request, Response};
use crate::reload::{ReloadHandle, StateCell};
use crate::shards::{ShardArena, ShardSet};
use goalrec_core::{
    Activity, AssocView, BestMatch, Breadth, DeltaSegment, Focus, FocusVariant, GoalLibrary,
    GoalModel, GoalRecommender, LibraryStats, LiveRef, Scored, Scratch, StatsReport,
};
use goalrec_obs::{self as obs, names};
use goalrec_shard::ShardStrategy;
use serde_json::Value;
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// The strategy names the API accepts, in documentation order.
pub const STRATEGY_NAMES: &[&str] = &["breadth", "best-match", "focus-cmp", "focus-cl"];

/// The expensive-to-build half of the serving state: the compiled model,
/// its library, stats, and one pre-built recommender per strategy.
/// Shared (behind one `Arc`) across append swaps, so staging a live
/// implementation publishes a new [`AppState`] by cloning two `Arc`s —
/// never by recompiling the model.
struct CompiledState {
    /// Lazily materialised when the state was booted straight from a
    /// GRLB v2 model file (which stores no name dictionaries); eagerly
    /// set when the state was compiled from a [`GoalLibrary`]. Routes
    /// that only need display names go through [`AppState::action_name`]
    /// and never force the rebuild.
    library: OnceLock<Arc<GoalLibrary>>,
    model: Arc<GoalModel>,
    stats: LibraryStats,
    recommenders: Vec<(&'static str, GoalRecommender)>,
    built_at: Instant,
}

/// One pre-built recommender per served strategy, all sharing `model` —
/// the construction both [`AppState`] constructors go through.
fn recommenders_for(model: &Arc<GoalModel>) -> Vec<(&'static str, GoalRecommender)> {
    vec![
        (
            "breadth",
            GoalRecommender::new(Arc::clone(model), Box::new(Breadth)),
        ),
        (
            "best-match",
            GoalRecommender::new(Arc::clone(model), Box::new(BestMatch::default())),
        ),
        (
            "focus-cmp",
            GoalRecommender::new(
                Arc::clone(model),
                Box::new(Focus::new(FocusVariant::Completeness)),
            ),
        ),
        (
            "focus-cl",
            GoalRecommender::new(
                Arc::clone(model),
                Box::new(Focus::new(FocusVariant::Closeness)),
            ),
        ),
    ]
}

/// Everything a worker needs to answer requests: the compiled base
/// (model, library, recommenders) plus the live append delta overlaid on
/// it. One `ctx.state()` load yields a coherent base ⊕ delta snapshot —
/// an append or compaction landing mid-request never changes what that
/// request is answered from.
pub struct AppState {
    compiled: Arc<CompiledState>,
    delta: Arc<DeltaSegment>,
    generation: u64,
}

impl AppState {
    /// Compiles the model and the per-strategy recommenders as the
    /// initial serving state (generation 1), with an empty delta.
    pub fn new(library: GoalLibrary) -> Result<Self, ServerError> {
        AppState::with_generation(library, 1)
    }

    /// [`AppState::new`] with an explicit generation — what the reload
    /// supervisor uses to stamp each successor state.
    pub fn with_generation(library: GoalLibrary, generation: u64) -> Result<Self, ServerError> {
        Self::with_generation_traced(library, generation, &mut obs::TraceContext::disabled())
    }

    /// [`AppState::with_generation`], recording the model compilation as
    /// a `span.model_build` span on `trace` — the reload supervisor uses
    /// this to make rebuild cost visible in `/debug/traces`.
    pub fn with_generation_traced(
        library: GoalLibrary,
        generation: u64,
        trace: &mut obs::TraceContext,
    ) -> Result<Self, ServerError> {
        let build = trace.start_span(names::SPAN_MODEL_BUILD);
        let model = Arc::new(GoalModel::build(&library)?);
        let stats = library.stats();
        let recommenders = recommenders_for(&model);
        trace.end_span(build);
        let delta = Arc::new(DeltaSegment::for_base(&model));
        let cache = OnceLock::new();
        let _ = cache.set(Arc::new(library));
        Ok(AppState {
            compiled: Arc::new(CompiledState {
                library: cache,
                model,
                stats,
                recommenders,
                built_at: Instant::now(),
            }),
            delta,
            generation,
        })
    }

    /// Builds serving state directly from an already-validated model —
    /// the GRLB v2 fast path, where no [`GoalLibrary`] was ever
    /// materialised. Stats come from the model's CSR sections; the
    /// library cache starts empty and is only rebuilt (with synthetic
    /// `a{i}`/`g{i}` names) if something actually asks for it, e.g. a
    /// compaction persisting to a JSONL target.
    pub fn from_model_traced(
        model: GoalModel,
        generation: u64,
        trace: &mut obs::TraceContext,
    ) -> Result<Self, ServerError> {
        let build = trace.start_span(names::SPAN_MODEL_BUILD);
        let model = Arc::new(model);
        let stats = model.stats();
        let recommenders = recommenders_for(&model);
        trace.end_span(build);
        let delta = Arc::new(DeltaSegment::for_base(&model));
        Ok(AppState {
            compiled: Arc::new(CompiledState {
                library: OnceLock::new(),
                model,
                stats,
                recommenders,
                built_at: Instant::now(),
            }),
            delta,
            generation,
        })
    }

    /// A successor state sharing this state's compiled base but carrying
    /// `delta` as its live overlay. Generation is preserved: appends stage
    /// into the *current* generation; only reloads and compactions mint a
    /// new one.
    pub(crate) fn with_staged(&self, delta: Arc<DeltaSegment>) -> AppState {
        AppState {
            compiled: Arc::clone(&self.compiled),
            delta,
            generation: self.generation,
        }
    }

    /// The shared compiled model (the base of the overlay).
    pub fn model(&self) -> &Arc<GoalModel> {
        &self.compiled.model
    }

    /// The library behind the model, materialising it on first use when
    /// the state was booted straight from a model file. The rebuild is
    /// cached per compiled base, so at most one caller per generation
    /// pays it.
    pub fn library(&self) -> Result<&Arc<GoalLibrary>, ServerError> {
        if let Some(lib) = self.compiled.library.get() {
            return Ok(lib);
        }
        // `OnceLock::get_or_try_init` is unstable; do the fallible init by
        // hand. A racing `set` means another thread finished first — its
        // value wins and ours is dropped, which is fine.
        let built = self
            .compiled
            .model
            .to_library()
            .map_err(ServerError::Recommend)?;
        let _ = self.compiled.library.set(Arc::new(built));
        self.compiled
            .library
            .get()
            .ok_or_else(|| ServerError::Internal("library cache lost a completed init".to_owned()))
    }

    /// Resolves an action id to a display name without forcing the
    /// library rebuild: real names when the library exists, the same
    /// synthetic `a{raw}` that [`GoalModel::to_library`] would mint when
    /// it does not.
    pub fn action_name(&self, action: goalrec_core::ids::ActionId) -> String {
        match self.compiled.library.get() {
            Some(lib) => lib.action_name(action),
            // goalrec-lint:allow(hot-path-alloc): response assembly renders display names per request
            None => format!("a{}", action.raw()),
        }
    }

    /// The precomputed library stats behind `/v1/stats`.
    pub fn stats(&self) -> &LibraryStats {
        &self.compiled.stats
    }

    /// The live read view: compiled base ⊕ append delta. An empty delta
    /// vanishes (`LiveRef::overlay` drops it), so between appends this is
    /// exactly the plain compiled view.
    pub fn live(&self) -> LiveRef<'_> {
        LiveRef::overlay(&self.compiled.model, &self.delta)
    }

    /// The live append delta overlaid on the compiled base.
    pub fn delta(&self) -> &Arc<DeltaSegment> {
        &self.delta
    }

    /// Staged-but-uncompacted implementations in this snapshot.
    pub fn delta_len(&self) -> usize {
        self.delta.len()
    }

    /// Which reload generation this state is: 1 at startup, +1 per
    /// successful hot reload or compaction. Appends do not bump it.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// How long ago this state's *compiled base* was built — `/healthz`
    /// reports it as `model_age_ms` so operators can tell a reload
    /// actually took. Append swaps share the base, so they do not reset
    /// the age.
    pub fn model_age(&self) -> Duration {
        self.compiled.built_at.elapsed()
    }

    fn recommender(&self, strategy: &str) -> Result<&GoalRecommender, ServerError> {
        self.compiled
            .recommenders
            .iter()
            .find(|(name, _)| *name == strategy)
            .map(|(_, r)| r)
            .ok_or_else(|| ServerError::UnknownStrategy(strategy.to_owned()))
    }
}

/// Every route label `handle` can classify a request into. The last entry
/// is the catch-all and backs [`ServeCtx::route_counter`]'s fallback.
const ROUTES: [&str; 9] = [
    "healthz",
    "metrics",
    "stats",
    "recommend",
    "admin_reload",
    "admin_append",
    "debug_traces",
    "debug_requests",
    "other",
];

/// How many implementations one `POST /v1/admin/library/append` body may
/// stage by default; larger batches are answered `413` so a runaway
/// client cannot balloon the delta in one request.
pub const DEFAULT_APPEND_CAP: usize = 1024;

/// Everything the routing layer needs: the swappable serving state, the
/// reload supervisor (absent in contexts that never reload, e.g. unit
/// tests), the trace tail sampler and the in-flight request registry.
pub struct ServeCtx {
    states: Arc<StateCell>,
    reload: Option<ReloadHandle>,
    tail: Arc<obs::TailSampler>,
    inflight: Arc<InflightRegistry>,
    started: Instant,
    /// The sharded serving plane; `None` runs the classic single-model
    /// path. When set, `POST /v1/recommend` scatters across the shard
    /// cells and k-way merges, and `/healthz` + `/v1/stats` report the
    /// per-shard generation vector.
    shards: Option<Arc<ShardSet>>,
    /// Per-route request counters, resolved once at construction and
    /// indexed in lockstep with [`ROUTES`] — `handle` must not pay the
    /// registry's name formatting and lock on every request.
    route_counters: [Arc<obs::Counter>; 9],
    /// Most implementations one append body may stage ([`DEFAULT_APPEND_CAP`]
    /// unless overridden with [`ServeCtx::with_append_cap`]).
    append_cap: usize,
}

impl ServeCtx {
    /// Wires a state cell to an optional reload supervisor, with a
    /// default-configured tail sampler and a fresh in-flight registry.
    pub fn new(states: Arc<StateCell>, reload: Option<ReloadHandle>) -> Self {
        ServeCtx {
            states,
            reload,
            tail: Arc::new(obs::TailSampler::new(obs::TailConfig::default())),
            inflight: Arc::new(InflightRegistry::new()),
            started: Instant::now(),
            shards: None,
            route_counters: ROUTES.map(|r| obs::counter(&names::server_route_requests(r))),
            append_cap: DEFAULT_APPEND_CAP,
        }
    }

    /// Overrides the per-request append cap (`--append-max-entries`).
    pub fn with_append_cap(mut self, cap: usize) -> Self {
        self.append_cap = cap.max(1);
        self
    }

    /// The pre-resolved request counter for `route`; unknown labels fall
    /// back to the catch-all slot.
    fn route_counter(&self, route: &str) -> &obs::Counter {
        let i = ROUTES
            .iter()
            .position(|r| *r == route)
            .unwrap_or(ROUTES.len() - 1);
        &self.route_counters[i]
    }

    /// Replaces the tail sampler — the server shares one between the
    /// request path and the reload supervisor.
    pub fn with_tail(mut self, tail: Arc<obs::TailSampler>) -> Self {
        self.tail = tail;
        self
    }

    /// Attaches the sharded serving plane (`--shards N`); `None` keeps
    /// the classic single-model path.
    pub fn with_shards(mut self, shards: Option<Arc<ShardSet>>) -> Self {
        self.shards = shards;
        self
    }

    /// The sharded serving plane, when the server runs sharded.
    pub fn shards(&self) -> Option<&Arc<ShardSet>> {
        self.shards.as_ref()
    }

    /// A reload-less context over a fixed state — test and embedding aid.
    pub fn fixed(state: AppState) -> Self {
        ServeCtx::new(Arc::new(StateCell::new(state)), None)
    }

    /// One consistent snapshot of the serving state.
    pub fn state(&self) -> Arc<AppState> {
        self.states.load()
    }

    /// The reload supervisor, when hot reload is enabled.
    pub fn reload(&self) -> Option<&ReloadHandle> {
        self.reload.as_ref()
    }

    /// The tail sampler behind `GET /debug/traces`.
    pub fn tail(&self) -> &Arc<obs::TailSampler> {
        &self.tail
    }

    /// The in-flight registry behind `GET /debug/requests`.
    pub(crate) fn inflight(&self) -> &Arc<InflightRegistry> {
        &self.inflight
    }

    /// Milliseconds since this context was built — the serving uptime.
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// One worker's reusable per-request memory: the core ranking arena plus
/// the scatter-gather arena for the sharded path. Workers own exactly one
/// for their lifetime, so steady-state recommends on either path never
/// touch the allocator.
pub struct WorkerArena {
    /// The unsharded ranking arena.
    pub scratch: Scratch,
    /// Per-shard merge slots and snapshot holder for the sharded path.
    pub shards: ShardArena,
}

impl WorkerArena {
    /// An empty arena; buffers grow to their steady-state high-water mark
    /// over the first requests and are reused from then on.
    // goalrec-lint:allow(hot-path-alloc): worker startup — arenas are built once per worker thread, not per request
    pub fn new() -> Self {
        WorkerArena {
            scratch: Scratch::new(),
            shards: ShardArena::new(),
        }
    }
}

impl Default for WorkerArena {
    fn default() -> Self {
        Self::new()
    }
}

/// Dispatches one request. The per-route counters are recorded here so
/// they count exactly the requests that reached routing. `arena` is the
/// calling worker's reusable memory; only the recommend route uses it.
/// `trace` is the worker's request-scoped trace — routing tags it with
/// the route name and serving generation, and the recommend route records
/// its ranking spans into it.
pub fn handle(
    ctx: &ServeCtx,
    request: &Request,
    arena: &mut WorkerArena,
    trace: &mut obs::TraceContext,
) -> Result<Response, ServerError> {
    let route = match (request.method.as_str(), request.path.as_str()) {
        (_, "/healthz") => "healthz",
        (_, "/metrics") => "metrics",
        (_, "/v1/stats") => "stats",
        (_, "/v1/recommend") => "recommend",
        (_, "/v1/admin/reload") => "admin_reload",
        (_, "/v1/admin/library/append") => "admin_append",
        (_, "/debug/traces") => "debug_traces",
        (_, "/debug/requests") => "debug_requests",
        _ => "other",
    };
    ctx.route_counter(route).inc();
    trace.set_route(route);

    // One snapshot per request: a hot reload that lands after this line
    // does not change what this request is answered from.
    let state = ctx.state();
    trace.set_generation(state.generation());

    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Ok(healthz(ctx, &state)),
        ("GET", "/metrics") => Ok(metrics(request)),
        ("GET", "/v1/stats") => Ok(stats(ctx, &state)),
        ("GET", "/debug/traces") => Ok(debug_traces(ctx, request)),
        ("GET", "/debug/requests") => Ok(debug_requests(ctx)),
        ("POST", "/v1/recommend") => match ctx.shards() {
            Some(set) => recommend_sharded(set, &state, request, &mut arena.shards, trace),
            None => recommend(&state, request, &mut arena.scratch, trace),
        },
        ("POST", "/v1/admin/reload") => admin_reload(ctx, request),
        ("POST", "/v1/admin/library/append") => admin_append(ctx, request),
        (_, "/healthz")
        | (_, "/metrics")
        | (_, "/v1/stats")
        | (_, "/debug/traces")
        | (_, "/debug/requests") => Err(ServerError::MethodNotAllowed {
            // goalrec-lint:allow(hot-path-alloc): reject path — the error response owns the offending path
            path: request.path.clone(),
            allowed: "GET",
        }),
        (_, "/v1/recommend") | (_, "/v1/admin/reload") | (_, "/v1/admin/library/append") => {
            Err(ServerError::MethodNotAllowed {
                // goalrec-lint:allow(hot-path-alloc): reject path — the error response owns the offending path
                path: request.path.clone(),
                allowed: "POST",
            })
        }
        // goalrec-lint:allow(hot-path-alloc): reject path — the error response owns the offending path
        _ => Err(ServerError::NotFound(request.path.clone())),
    }
}

/// First value of `key` in a raw query string (`k=v&k2=v2`). No
/// percent-decoding: the filters only take identifier-shaped values.
fn query_param<'q>(query: &'q str, key: &str) -> Option<&'q str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        (k == key).then_some(v)
    })
}

/// `GET /metrics`: the metrics snapshot, JSON by default and Prometheus
/// text when `?format=prometheus`.
// goalrec-lint:allow(hot-path-alloc): control-plane route — scrapes render a fresh snapshot per request
fn metrics(request: &Request) -> Response {
    let prometheus = request
        .query
        .as_deref()
        .and_then(|q| query_param(q, "format"))
        .is_some_and(|f| f == "prometheus");
    if prometheus {
        Response::text(200, obs::render_prometheus())
    } else {
        Response::text(200, obs::snapshot().to_string())
    }
}

/// One JSON row per shard (`{"shard", "generation", "model_age_ms"}`),
/// read from the current snapshot of each cell — what `/healthz` and
/// `/v1/stats` publish when the server runs sharded.
fn shard_rows(set: &ShardSet) -> Vec<Value> {
    let mut rows = Vec::with_capacity(set.num_shards());
    for i in 0..set.num_shards() {
        let Some(snap) = set.load(i) else { continue };
        let age_ms = u64::try_from(snap.model_age().as_millis()).unwrap_or(u64::MAX);
        rows.push(serde_json::json!({
            "shard": i,
            "generation": snap.generation(),
            "model_age_ms": age_ms,
        }));
    }
    rows
}

/// `GET /healthz`: liveness JSON. Also refreshes the `server.model_age_ms`
/// and `server.trace.tail_occupancy` gauges, so scrapes that only read
/// `/metrics` see the same numbers the health probe reports. Sharded
/// servers report the per-shard generation vector, with the top-level
/// `generation` as the floor across shards so existing probes keep a
/// single monotone number to watch.
// goalrec-lint:allow(hot-path-alloc): control-plane route — probes assemble their JSON per request
fn healthz(ctx: &ServeCtx, state: &AppState) -> Response {
    let model_age_ms = u64::try_from(state.model_age().as_millis()).unwrap_or(u64::MAX);
    let occupancy = ctx.tail().occupancy();
    obs::gauge(names::SERVER_MODEL_AGE_MS).set(model_age_ms as f64);
    obs::gauge(names::SERVER_TRACE_TAIL_OCCUPANCY).set(occupancy as f64);
    let doc = match ctx.shards() {
        Some(set) => serde_json::json!({
            "status": "ok",
            "generation": set.min_generation(),
            "model_age_ms": model_age_ms,
            "delta_size": state.delta_len(),
            "uptime_ms": ctx.uptime_ms(),
            "trace_tail_occupancy": occupancy,
            "shards": shard_rows(set),
        }),
        None => serde_json::json!({
            "status": "ok",
            "generation": state.generation(),
            "model_age_ms": model_age_ms,
            "delta_size": state.delta_len(),
            "uptime_ms": ctx.uptime_ms(),
            "trace_tail_occupancy": occupancy,
        }),
    };
    Response::json(200, doc.to_string())
}

/// `GET /v1/stats`: the [`StatsReport`] JSON prefixed with serving-side
/// fields (`uptime_ms`, tail-sampler occupancy).
// goalrec-lint:allow(hot-path-alloc): control-plane route — the stats report is rebuilt per request
fn stats(ctx: &ServeCtx, state: &AppState) -> Response {
    let report = StatsReport::new(state.stats().clone(), Some(obs::snapshot()));
    let text = report.to_json_pretty();
    let mut fields = match serde_json::from_str(&text) {
        Ok(Value::Object(fields)) => fields,
        // Unreachable: the report always serializes as a JSON object.
        _ => Vec::new(),
    };
    let occupancy = u64::try_from(ctx.tail().occupancy()).unwrap_or(u64::MAX);
    if let Some(set) = ctx.shards() {
        fields.insert(0, ("shards".to_owned(), Value::Array(shard_rows(set))));
    }
    fields.insert(
        0,
        (
            "delta_size".to_owned(),
            Value::UInt(state.delta_len() as u64),
        ),
    );
    fields.insert(
        0,
        ("trace_tail_occupancy".to_owned(), Value::UInt(occupancy)),
    );
    fields.insert(0, ("uptime_ms".to_owned(), Value::UInt(ctx.uptime_ms())));
    let doc = Value::Object(fields);
    let body = serde_json::to_string_pretty(&doc).unwrap_or_else(|_| doc.to_string());
    Response::json(200, body)
}

/// `GET /debug/traces`: the retained tail traces, slowest first, with
/// optional `route=`, `strategy=` and `min_us=` query filters.
// goalrec-lint:allow(hot-path-alloc): control-plane route — trace introspection copies the retained tail
fn debug_traces(ctx: &ServeCtx, request: &Request) -> Response {
    let query = request.query.as_deref().unwrap_or("");
    let route = query_param(query, "route").filter(|v| !v.is_empty());
    let strategy = query_param(query, "strategy").filter(|v| !v.is_empty());
    let min_ns = query_param(query, "min_us")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0)
        .saturating_mul(1_000);
    let traces = ctx.tail().snapshot(route, strategy, min_ns);
    let rows: Vec<Value> = traces.iter().map(|t| t.to_value()).collect();
    let doc = serde_json::json!({
        "count": rows.len(),
        "offered": ctx.tail().offered(),
        "occupancy": ctx.tail().occupancy(),
        "traces": rows,
    });
    Response::json(200, doc.to_string())
}

/// `GET /debug/requests`: a point-in-time snapshot of every request a
/// worker is currently inside, with age and current span.
// goalrec-lint:allow(hot-path-alloc): control-plane route — in-flight introspection snapshots per request
fn debug_requests(ctx: &ServeCtx) -> Response {
    let rows = ctx.inflight().snapshot_rows();
    let doc = serde_json::json!({
        "uptime_ms": ctx.uptime_ms(),
        "count": rows.len(),
        "inflight": rows,
    });
    Response::json(200, doc.to_string())
}

/// Parses the optional `{"path": "...", "shard": n}` reload body; an
/// empty body or a missing/`null` `path` means "reload the startup file",
/// and a present `shard` asks the supervisor to rebuild and swap only
/// that shard's cell.
fn parse_reload_body(body: &[u8]) -> Result<(Option<PathBuf>, Option<usize>), ServerError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServerError::BadRequest("body is not valid UTF-8".to_owned()))?;
    if text.trim().is_empty() {
        return Ok((None, None));
    }
    let doc: Value = serde_json::from_str(text)
        .map_err(|e| ServerError::BadRequest(format!("invalid JSON body: {e}")))?;
    let path = match doc.get("path") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            v.as_str()
                .map(PathBuf::from)
                .ok_or_else(|| ServerError::BadRequest("'path' must be a string".to_owned()))?,
        ),
    };
    let shard = match doc.get("shard") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .and_then(|u| usize::try_from(u).ok())
                .ok_or_else(|| {
                    ServerError::BadRequest("'shard' must be a non-negative integer".to_owned())
                })?,
        ),
    };
    Ok((path, shard))
}

// goalrec-lint:allow(hot-path-alloc): control-plane route — reload swaps whole model generations by design
fn admin_reload(ctx: &ServeCtx, request: &Request) -> Result<Response, ServerError> {
    let Some(handle) = ctx.reload() else {
        return Err(ServerError::ReloadFailed(
            "hot reload is not enabled on this server".to_owned(),
        ));
    };
    let (path, shard) = parse_reload_body(&request.body)?;
    let path = match path {
        Some(path) => path,
        None => handle.default_path().map(PathBuf::from).ok_or_else(|| {
            ServerError::BadRequest(
                "no 'path' in the body and the server was not started from a library file"
                    .to_owned(),
            )
        })?,
    };
    let doc = match shard {
        Some(shard) => {
            let generation = handle.reload_shard_blocking(path.clone(), shard)?;
            serde_json::json!({
                "status": "reloaded",
                "path": path.display().to_string(),
                "shard": shard,
                "generation": generation,
            })
        }
        None => {
            let generation = handle.reload_blocking(path.clone())?;
            serde_json::json!({
                "status": "reloaded",
                "path": path.display().to_string(),
                "generation": generation,
            })
        }
    };
    Ok(Response::json(200, doc.to_string()))
}

/// Parses a `POST /v1/admin/library/append` body: either one
/// implementation (`{"goal": g, "actions": [a, …]}`) or a batch
/// (`{"implementations": [{…}, …]}`). Field validation is shared with
/// the JSONL reader and the WAL ([`implementation_from_value`]), so the
/// error for a bad entry names the offending field; a batch larger than
/// `cap` is a typed `413`.
///
/// [`implementation_from_value`]: goalrec_datasets::io::implementation_from_value
fn parse_append_body(body: &[u8], cap: usize) -> Result<Vec<(u32, Vec<u32>)>, ServerError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServerError::BadRequest("body is not valid UTF-8".to_owned()))?;
    if text.trim().is_empty() {
        return Err(ServerError::BadRequest(
            "empty body; expected {\"goal\": .., \"actions\": [..]} \
             or {\"implementations\": [..]}"
                .to_owned(),
        ));
    }
    let doc: Value = serde_json::from_str(text)
        .map_err(|e| ServerError::BadRequest(format!("invalid JSON body: {e}")))?;
    let items: Vec<&Value> = match doc.get("implementations") {
        Some(Value::Array(items)) => items.iter().collect(),
        Some(_) => {
            return Err(ServerError::BadRequest(
                "field `implementations`: expected an array of implementation objects".to_owned(),
            ))
        }
        None => vec![&doc],
    };
    if items.is_empty() {
        return Err(ServerError::BadRequest(
            "field `implementations`: must stage at least one implementation".to_owned(),
        ));
    }
    if items.len() > cap {
        return Err(ServerError::AppendTooLarge {
            entries: items.len(),
            max: cap,
        });
    }
    let mut entries = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let entry = goalrec_datasets::io::implementation_from_value(item)
            .map_err(|detail| ServerError::BadRequest(format!("implementation #{i}: {detail}")))?;
        entries.push(entry);
    }
    Ok(entries)
}

/// `POST /v1/admin/library/append`: stage implementations into the live
/// delta. The supervisor WAL-logs the batch before acknowledging, so a
/// `200` means the entries survive a crash; `delta_size` in the response
/// is the staged total after this batch.
// goalrec-lint:allow(hot-path-alloc): control-plane route — appends stage new library rows by design
fn admin_append(ctx: &ServeCtx, request: &Request) -> Result<Response, ServerError> {
    let Some(handle) = ctx.reload() else {
        return Err(ServerError::ReloadFailed(
            "live appends are not enabled on this server".to_owned(),
        ));
    };
    let entries = parse_append_body(&request.body, ctx.append_cap)?;
    let appended = entries.len();
    let staged_total = handle.append_blocking(entries)?;
    let state = ctx.state();
    let doc = serde_json::json!({
        "status": "staged",
        "appended": appended,
        "delta_size": staged_total,
        "generation": state.generation(),
    });
    Ok(Response::json(200, doc.to_string()))
}

/// Parsed `/v1/recommend` body.
struct RecommendParams {
    activity: Vec<u32>,
    strategy: String,
    k: usize,
}

fn parse_recommend_body(body: &[u8]) -> Result<RecommendParams, ServerError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ServerError::BadRequest("body is not valid UTF-8".to_owned()))?;
    if text.trim().is_empty() {
        return Err(ServerError::BadRequest(
            "empty body; expected {\"activity\": [..], \"strategy\": .., \"k\": ..}".to_owned(),
        ));
    }
    let doc: Value = serde_json::from_str(text)
        // goalrec-lint:allow(hot-path-alloc): reject path — the parse error message is built only for bad bodies
        .map_err(|e| ServerError::BadRequest(format!("invalid JSON body: {e}")))?;

    let activity = match doc.get("activity") {
        Some(Value::Array(items)) => items
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|u| u32::try_from(u).ok())
                    .ok_or_else(|| {
                        ServerError::BadRequest(
                            "'activity' must be an array of non-negative action ids".to_owned(),
                        )
                    })
            })
            .collect::<Result<Vec<u32>, ServerError>>()?,
        _ => {
            return Err(ServerError::BadRequest(
                "missing 'activity' (array of action ids)".to_owned(),
            ))
        }
    };

    let strategy = match doc.get("strategy") {
        None | Some(Value::Null) => "breadth".to_owned(),
        Some(v) => v
            .as_str()
            .ok_or_else(|| ServerError::BadRequest("'strategy' must be a string".to_owned()))?
            .to_owned(),
    };

    let k = match doc.get("k") {
        None | Some(Value::Null) => 10,
        Some(v) => v
            .as_u64()
            .and_then(|u| usize::try_from(u).ok())
            .filter(|&k| k > 0)
            .ok_or_else(|| ServerError::BadRequest("'k' must be a positive integer".to_owned()))?,
    };

    Ok(RecommendParams {
        activity,
        strategy,
        k,
    })
}

/// Renders the recommend response from a ranked slice — shared by the
/// unsharded and sharded paths so the wire shape cannot drift between
/// them. The response body is the documented per-request allocation.
fn render_recommendation(
    state: &AppState,
    strategy: &str,
    k: usize,
    activity: &Activity,
    ranked: &[Scored],
) -> Response {
    let items: Vec<Value> = ranked
        .iter()
        .map(|s| {
            serde_json::json!({
                "action": s.action.raw(),
                "name": state.action_name(s.action),
                "score": s.score,
            })
        })
        // goalrec-lint:allow(hot-path-alloc): the response body is the documented per-request allocation
        .collect();
    let doc = serde_json::json!({
        "strategy": strategy,
        "k": k,
        "activity": activity.raw().to_vec(),
        "recommendations": items,
    });
    // goalrec-lint:allow(hot-path-alloc): the response body is the documented per-request allocation
    Response::json(200, doc.to_string())
}

/// Admits an activity against the live id space: every id must fall
/// inside base ∪ delta. Staged-only actions are servable the moment the
/// append returns, and the check degrades to the plain compiled extent
/// when the delta is empty.
fn check_activity(live: LiveRef<'_>, activity: &[u32]) -> Result<(), ServerError> {
    for &id in activity {
        if goalrec_core::ids::ActionId::new(id).index() >= live.num_actions() {
            return Err(ServerError::Recommend(goalrec_core::Error::UnknownAction(
                id,
            )));
        }
    }
    Ok(())
}

fn recommend(
    state: &AppState,
    request: &Request,
    scratch: &mut Scratch,
    trace: &mut obs::TraceContext,
) -> Result<Response, ServerError> {
    let params = parse_recommend_body(&request.body)?;
    let live = state.live();
    check_activity(live, &params.activity)?;
    let recommender = state.recommender(&params.strategy)?;
    let activity = Activity::from_raw(params.activity.iter().copied());
    // The ranking pass reuses the worker's arena; the response body is the
    // only per-request allocation left on this route. The live variant
    // reads base ⊕ delta (an empty delta dispatches straight to the
    // compiled base), tags `trace` with the strategy and records the
    // rank/candidates/topk spans — still allocation-free with an empty
    // delta (see core's alloc_counting test).
    let ranked = recommender.recommend_live_into_traced(live, &activity, params.k, scratch, trace);
    Ok(render_recommendation(
        state,
        &params.strategy,
        params.k,
        &activity,
        ranked,
    ))
}

/// The sharded recommend path: scatter the activity across one coherent
/// set of per-shard snapshots (one `span.shard.<i>` child span and one
/// `shard.<i>.*` observation each), then k-way merge into the worker's
/// arena. Results are bit-identical to [`recommend`] — the `goalrec-shard`
/// property tests prove the merge exact — and `state` still provides the
/// global id-space check and action names, which every shard shares.
fn recommend_sharded(
    set: &ShardSet,
    state: &AppState,
    request: &Request,
    arena: &mut ShardArena,
    trace: &mut obs::TraceContext,
) -> Result<Response, ServerError> {
    let params = parse_recommend_body(&request.body)?;
    // The global state's live view covers every staged append, so the
    // admission check here matches the per-shard overlays exactly.
    check_activity(state.live(), &params.activity)?;
    let strategy = ShardStrategy::for_api_name(&params.strategy)
        // goalrec-lint:allow(hot-path-alloc): reject path — the error response owns the unknown name
        .ok_or_else(|| ServerError::UnknownStrategy(params.strategy.to_owned()))?;
    let activity = Activity::from_raw(params.activity.iter().copied());
    trace.set_strategy(strategy.name());

    let rank = trace.start_child_span(names::SPAN_RANK);
    // One coherent snapshot per request: a per-shard reload landing after
    // this line cannot change what this request is answered from. The
    // generation tag is the floor across the snapshot — during a rolling
    // per-shard reload one request can legitimately span generations.
    set.snapshot_into(&mut arena.snapshots);
    let generation = arena
        .snapshots
        .iter()
        .map(|s| s.generation())
        .min()
        .unwrap_or(0);
    trace.set_generation(generation);
    for (i, snap) in arena.snapshots.iter().enumerate() {
        let span = trace.start_child_span(names::span_shard(i));
        let t0 = Instant::now();
        strategy.scatter(snap, i, &activity, &mut arena.scratch);
        set.observe(i, t0.elapsed());
        trace.end_span(span);
    }
    strategy.gather(&arena.snapshots, &activity, params.k, &mut arena.scratch);
    trace.end_span(rank);

    Ok(render_recommendation(
        state,
        &params.strategy,
        params.k,
        &activity,
        arena.scratch.out(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use goalrec_core::LibraryBuilder;

    /// Test shim: routes with a fresh arena and a disabled trace,
    /// shadowing [`super::handle`] so call sites stay signature-free.
    fn handle(ctx: &ServeCtx, request: &Request) -> Result<Response, ServerError> {
        super::handle(
            ctx,
            request,
            &mut WorkerArena::new(),
            &mut obs::TraceContext::disabled(),
        )
    }

    fn library() -> GoalLibrary {
        let mut b = LibraryBuilder::new();
        b.add_impl("olivier salad", ["potatoes", "carrots", "pickles"])
            .unwrap();
        b.add_impl("mashed potatoes", ["potatoes", "nutmeg", "butter"])
            .unwrap();
        b.add_impl("pan-fried carrots", ["carrots", "nutmeg"])
            .unwrap();
        b.build().unwrap()
    }

    fn state() -> ServeCtx {
        ServeCtx::fixed(AppState::new(library()).unwrap())
    }

    /// A sharded context over the same library `state()` serves.
    fn sharded_state(shards: usize) -> ServeCtx {
        let lib = library();
        let set = ShardSet::build(&lib, shards, goalrec_shard::PartitionMode::HashGoal).unwrap();
        ServeCtx::fixed(AppState::new(lib).unwrap()).with_shards(Some(Arc::new(set)))
    }

    fn get(path: &str) -> Request {
        Request {
            method: "GET".to_owned(),
            path: path.to_owned(),
            query: None,
            headers: Vec::new(),
            body: Vec::new(),
            keep_alive: true,
        }
    }

    fn post(path: &str, body: &str) -> Request {
        Request {
            method: "POST".to_owned(),
            body: body.as_bytes().to_vec(),
            ..get(path)
        }
    }

    fn get_q(path: &str, query: &str) -> Request {
        Request {
            query: Some(query.to_owned()),
            ..get(path)
        }
    }

    #[test]
    fn healthz_and_metrics_and_stats() {
        let st = state();
        let health = handle(&st, &get("/healthz")).unwrap();
        assert_eq!(health.status, 200);
        assert_eq!(health.content_type, "application/json");
        let health_text = String::from_utf8(health.body).unwrap();
        assert!(health_text.contains("\"status\":\"ok\""), "{health_text}");
        assert!(health_text.contains("\"generation\":1"), "{health_text}");
        assert!(health_text.contains("\"model_age_ms\""), "{health_text}");
        assert!(health_text.contains("\"uptime_ms\""), "{health_text}");
        assert!(
            health_text.contains("\"trace_tail_occupancy\""),
            "{health_text}"
        );
        let metrics = handle(&st, &get("/metrics")).unwrap();
        assert_eq!(metrics.content_type, "text/plain; charset=utf-8");
        let stats = handle(&st, &get("/v1/stats")).unwrap();
        assert_eq!(stats.content_type, "application/json");
        let text = String::from_utf8(stats.body).unwrap();
        assert!(text.contains("num_implementations"), "{text}");
        assert!(text.contains("\"metrics\""), "{text}");
        assert!(text.contains("\"uptime_ms\""), "{text}");
        assert!(text.contains("\"trace_tail_occupancy\""), "{text}");
    }

    #[test]
    fn healthz_refreshes_the_promoted_gauges() {
        let st = state();
        handle(&st, &get("/healthz")).unwrap();
        let snap = goalrec_obs::snapshot();
        assert!(snap.gauge(names::SERVER_MODEL_AGE_MS).is_some());
        assert!(snap.gauge(names::SERVER_TRACE_TAIL_OCCUPANCY).is_some());
    }

    #[test]
    fn metrics_format_prometheus_renders_exposition() {
        let st = state();
        // Tick at least one counter so the exposition is non-empty.
        handle(&st, &get("/healthz")).unwrap();
        let resp = handle(&st, &get_q("/metrics", "format=prometheus")).unwrap();
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("# TYPE "), "{text}");
        assert!(text.contains("goalrec_"), "{text}");
        // An unknown format value falls back to the text snapshot.
        let fallback = handle(&st, &get_q("/metrics", "format=wide")).unwrap();
        assert!(!String::from_utf8(fallback.body).unwrap().contains("# TYPE"));
    }

    #[test]
    fn debug_traces_reports_and_filters_offered_traces() {
        let st = state();
        // Serve one traced recommend and offer its trace, as a worker
        // would after responding.
        let mut trace = obs::TraceContext::new(true);
        trace.begin(obs::TraceId(0x51ab), std::time::Instant::now());
        super::handle(
            &st,
            &post("/v1/recommend", r#"{"activity": [0, 1], "k": 2}"#),
            &mut WorkerArena::new(),
            &mut trace,
        )
        .unwrap();
        trace.finish(200);
        st.tail().offer(&trace.snapshot());

        let resp = handle(&st, &get("/debug/traces")).unwrap();
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("\"trace\":\"00000000000051ab\""), "{text}");
        assert!(text.contains(names::SPAN_RANK), "{text}");
        assert!(text.contains("\"route\":\"recommend\""), "{text}");

        // Route and strategy filters narrow; a bogus filter empties.
        let hit = handle(
            &st,
            &get_q("/debug/traces", "route=recommend&strategy=Breadth"),
        )
        .unwrap();
        assert!(String::from_utf8(hit.body)
            .unwrap()
            .contains("00000000000051ab"));
        let miss = handle(&st, &get_q("/debug/traces", "route=healthz")).unwrap();
        let miss_text = String::from_utf8(miss.body).unwrap();
        assert!(miss_text.contains("\"count\":0"), "{miss_text}");
        // min_us beyond any plausible duration filters everything out.
        let too_slow = handle(&st, &get_q("/debug/traces", "min_us=60000000")).unwrap();
        assert!(String::from_utf8(too_slow.body)
            .unwrap()
            .contains("\"count\":0"));
    }

    #[test]
    fn debug_requests_snapshots_active_slots() {
        let st = state();
        let empty = handle(&st, &get("/debug/requests")).unwrap();
        let text = String::from_utf8(empty.body).unwrap();
        assert!(text.contains("\"count\":0"), "{text}");

        let slot = st.inflight().register(7);
        slot.begin(
            obs::TraceId(0xfeed),
            st.inflight().offset_us(std::time::Instant::now()),
        );
        let busy = handle(&st, &get("/debug/requests")).unwrap();
        let text = String::from_utf8(busy.body).unwrap();
        assert!(text.contains("\"count\":1"), "{text}");
        assert!(text.contains("000000000000feed"), "{text}");
        assert!(text.contains("\"worker\":7"), "{text}");
        assert!(text.contains(names::SPAN_PARSE), "{text}");
    }

    #[test]
    fn query_param_parses_raw_query_strings() {
        assert_eq!(query_param("a=1&b=2", "b"), Some("2"));
        assert_eq!(query_param("a=1&b=2", "a"), Some("1"));
        assert_eq!(query_param("a=1&b", "b"), Some(""));
        assert_eq!(query_param("a=1", "c"), None);
        assert_eq!(query_param("", "a"), None);
    }

    #[test]
    fn recommend_ranks_completions() {
        let st = state();
        // potatoes + carrots → pickles / nutmeg complete the open goals.
        let resp = handle(
            &st,
            &post("/v1/recommend", r#"{"activity": [0, 1], "k": 2}"#),
        )
        .unwrap();
        assert_eq!(resp.status, 200);
        let text = String::from_utf8(resp.body).unwrap();
        assert!(
            text.contains("pickles") || text.contains("nutmeg"),
            "{text}"
        );
        assert!(text.contains("\"strategy\""), "{text}");
    }

    #[test]
    fn every_strategy_name_is_servable() {
        let st = state();
        for name in STRATEGY_NAMES {
            let body = format!("{{\"activity\": [0], \"strategy\": \"{name}\"}}");
            let resp = handle(&st, &post("/v1/recommend", &body)).unwrap();
            assert_eq!(resp.status, 200, "strategy {name}");
        }
    }

    #[test]
    fn recommend_rejects_bad_payloads() {
        let st = state();
        let cases = [
            ("", "empty body"),
            ("{not json", "invalid JSON"),
            (r#"{"k": 3}"#, "missing activity"),
            (r#"{"activity": "zero"}"#, "non-array activity"),
            (r#"{"activity": [-1]}"#, "negative id"),
            (r#"{"activity": [0], "k": 0}"#, "zero k"),
            (r#"{"activity": [0], "strategy": 7}"#, "non-string strategy"),
        ];
        for (body, why) in cases {
            assert!(
                matches!(
                    handle(&st, &post("/v1/recommend", body)),
                    Err(ServerError::BadRequest(_))
                ),
                "case: {why}"
            );
        }
        assert!(matches!(
            handle(
                &st,
                &post(
                    "/v1/recommend",
                    r#"{"activity": [0], "strategy": "voodoo"}"#
                )
            ),
            Err(ServerError::UnknownStrategy(_))
        ));
        assert!(matches!(
            handle(&st, &post("/v1/recommend", r#"{"activity": [999]}"#)),
            Err(ServerError::Recommend(goalrec_core::Error::UnknownAction(
                999
            )))
        ));
    }

    #[test]
    fn routing_rejects_wrong_methods_and_unknown_paths() {
        let st = state();
        assert!(matches!(
            handle(&st, &post("/healthz", "")),
            Err(ServerError::MethodNotAllowed { .. })
        ));
        assert!(matches!(
            handle(&st, &get("/v1/recommend")),
            Err(ServerError::MethodNotAllowed { .. })
        ));
        assert!(matches!(
            handle(&st, &get("/v1/admin/reload")),
            Err(ServerError::MethodNotAllowed { .. })
        ));
        assert!(matches!(
            handle(&st, &post("/debug/traces", "")),
            Err(ServerError::MethodNotAllowed { .. })
        ));
        assert!(matches!(
            handle(&st, &post("/debug/requests", "")),
            Err(ServerError::MethodNotAllowed { .. })
        ));
        assert!(matches!(
            handle(&st, &get("/nope")),
            Err(ServerError::NotFound(_))
        ));
    }

    #[test]
    fn reload_route_without_a_supervisor_is_a_typed_error() {
        let st = state();
        assert!(matches!(
            handle(&st, &post("/v1/admin/reload", "")),
            Err(ServerError::ReloadFailed(_))
        ));
        // Body validation still runs ahead of dispatch semantics.
        assert!(matches!(
            parse_reload_body(br#"{"path": 7}"#),
            Err(ServerError::BadRequest(_))
        ));
        assert!(matches!(
            parse_reload_body(br#"{"shard": "zero"}"#),
            Err(ServerError::BadRequest(_))
        ));
        assert!(matches!(
            parse_reload_body(br#"{"shard": -1}"#),
            Err(ServerError::BadRequest(_))
        ));
        assert_eq!(parse_reload_body(b"").unwrap(), (None, None));
        assert_eq!(
            parse_reload_body(br#"{"path": "x.grlb"}"#).unwrap(),
            (Some(PathBuf::from("x.grlb")), None)
        );
        assert_eq!(
            parse_reload_body(br#"{"path": "x.grlb", "shard": 1}"#).unwrap(),
            (Some(PathBuf::from("x.grlb")), Some(1))
        );
        assert_eq!(
            parse_reload_body(br#"{"shard": 0}"#).unwrap(),
            (None, Some(0))
        );
    }

    #[test]
    fn append_route_without_a_supervisor_is_a_typed_error() {
        let st = state();
        assert!(matches!(
            handle(
                &st,
                &post("/v1/admin/library/append", r#"{"goal": 0, "actions": [1]}"#)
            ),
            Err(ServerError::ReloadFailed(_))
        ));
        assert!(matches!(
            handle(&st, &get("/v1/admin/library/append")),
            Err(ServerError::MethodNotAllowed { .. })
        ));
    }

    #[test]
    fn append_bodies_parse_in_both_forms() {
        assert_eq!(
            parse_append_body(br#"{"goal": 2, "actions": [0, 5]}"#, 8).unwrap(),
            vec![(2, vec![0, 5])]
        );
        let batch = parse_append_body(
            br#"{"implementations": [{"goal": 0, "actions": [1]}, {"goal": 1, "actions": [2, 3]}]}"#,
            8,
        )
        .unwrap();
        assert_eq!(batch, vec![(0, vec![1]), (1, vec![2, 3])]);
    }

    #[test]
    fn append_bodies_above_the_cap_are_a_typed_413() {
        let body = br#"{"implementations": [
            {"goal": 0, "actions": [1]},
            {"goal": 1, "actions": [2]},
            {"goal": 2, "actions": [3]}
        ]}"#;
        assert!(matches!(
            parse_append_body(body, 2),
            Err(ServerError::AppendTooLarge { entries: 3, max: 2 })
        ));
        // At the cap exactly, the batch is admitted.
        assert_eq!(parse_append_body(body, 3).unwrap().len(), 3);
    }

    #[test]
    fn append_errors_name_the_offending_field() {
        let cases: [(&[u8], &str); 4] = [
            (br#"{"goal": "zero", "actions": [1]}"#, "goal"),
            (br#"{"goal": 0}"#, "actions"),
            (br#"{"goal": 0, "actions": []}"#, "actions"),
            (br#"{"goal": 0, "actions": [-1]}"#, "actions"),
        ];
        for (body, field) in cases {
            match parse_append_body(body, 8) {
                Err(ServerError::BadRequest(msg)) => {
                    assert!(msg.contains(field), "expected `{field}` in: {msg}");
                    assert!(msg.contains("implementation #0"), "{msg}");
                }
                other => panic!("expected BadRequest naming `{field}`, got {other:?}"),
            }
        }
        // Batch entries report their index.
        match parse_append_body(
            br#"{"implementations": [{"goal": 0, "actions": [1]}, {"goal": 1}]}"#,
            8,
        ) {
            Err(ServerError::BadRequest(msg)) => {
                assert!(msg.contains("implementation #1"), "{msg}");
            }
            other => panic!("expected BadRequest for entry #1, got {other:?}"),
        }
        assert!(matches!(
            parse_append_body(br#"{"implementations": []}"#, 8),
            Err(ServerError::BadRequest(_))
        ));
        assert!(matches!(
            parse_append_body(br#"{"implementations": 3}"#, 8),
            Err(ServerError::BadRequest(_))
        ));
        assert!(matches!(
            parse_append_body(b"", 8),
            Err(ServerError::BadRequest(_))
        ));
    }

    #[test]
    fn healthz_reports_the_delta_size() {
        let st = state();
        let health = handle(&st, &get("/healthz")).unwrap();
        let text = String::from_utf8(health.body).unwrap();
        assert!(text.contains("\"delta_size\":0"), "{text}");
        let stats = handle(&st, &get("/v1/stats")).unwrap();
        let text = String::from_utf8(stats.body).unwrap();
        assert!(text.contains("\"delta_size\": 0"), "{text}");
    }

    #[test]
    fn staged_state_serves_staged_actions_without_a_rebuild() {
        use goalrec_core::ids::{ActionId, GoalId};
        let st = state();
        let base = st.state();
        // Stage one implementation over the base: a brand-new goal whose
        // actions include an id one past the base extent.
        let base_actions = base.live().num_actions();
        let mut delta = goalrec_core::DeltaSegment::for_base(base.model());
        delta
            .append(
                GoalId::new(3),
                vec![
                    ActionId::new(0),
                    ActionId::new(u32::try_from(base_actions).unwrap()),
                ],
            )
            .unwrap();
        let staged = base.with_staged(Arc::new(delta));
        assert_eq!(staged.delta_len(), 1);
        assert_eq!(staged.generation(), base.generation());
        let ctx = ServeCtx::fixed(staged);
        // An activity naming the staged-only action id is admitted and
        // ranked; the same id on the un-staged context is a 400.
        let body = format!("{{\"activity\": [{base_actions}], \"k\": 3}}");
        let resp = handle(&ctx, &post("/v1/recommend", &body)).unwrap();
        assert_eq!(resp.status, 200);
        assert!(matches!(
            handle(&st, &post("/v1/recommend", &body)),
            Err(ServerError::Recommend(_))
        ));
    }

    #[test]
    fn sharded_recommend_matches_unsharded_bytes() {
        let plain = state();
        for shards in [1usize, 2, 3] {
            let sharded = sharded_state(shards);
            for name in STRATEGY_NAMES {
                let body = format!("{{\"activity\": [0, 1], \"strategy\": \"{name}\", \"k\": 4}}");
                let expect = handle(&plain, &post("/v1/recommend", &body)).unwrap();
                let got = handle(&sharded, &post("/v1/recommend", &body)).unwrap();
                assert_eq!(got.status, 200, "strategy {name} shards {shards}");
                assert_eq!(
                    String::from_utf8(got.body).unwrap(),
                    String::from_utf8(expect.body.clone()).unwrap(),
                    "strategy {name} shards {shards}"
                );
            }
        }
    }

    #[test]
    fn sharded_recommend_reuses_one_arena_and_traces_per_shard() {
        let st = sharded_state(2);
        let mut arena = WorkerArena::new();
        let mut trace = obs::TraceContext::new(true);
        trace.begin(obs::TraceId(0x54a2), std::time::Instant::now());
        // Two requests through one arena: no state may leak between them.
        super::handle(
            &st,
            &post("/v1/recommend", r#"{"activity": [0, 1, 3], "k": 5}"#),
            &mut arena,
            &mut trace,
        )
        .unwrap();
        let resp = super::handle(
            &st,
            &post("/v1/recommend", r#"{"activity": [0, 1], "k": 2}"#),
            &mut arena,
            &mut trace,
        )
        .unwrap();
        trace.finish(200);
        let fresh = handle(
            &st,
            &post("/v1/recommend", r#"{"activity": [0, 1], "k": 2}"#),
        )
        .unwrap();
        assert_eq!(resp.body, fresh.body);
        // The trace carries the rank span plus one child span per shard.
        st.tail().offer(&trace.snapshot());
        let traces = handle(&st, &get("/debug/traces")).unwrap();
        let text = String::from_utf8(traces.body).unwrap();
        assert!(text.contains(names::SPAN_RANK), "{text}");
        assert!(text.contains("span.shard.0"), "{text}");
        assert!(text.contains("span.shard.1"), "{text}");
    }

    #[test]
    fn sharded_recommend_ticks_per_shard_metrics() {
        let st = sharded_state(2);
        let before: Vec<u64> = (0..2)
            .map(|i| {
                goalrec_obs::snapshot()
                    .counter(&names::shard_requests(i))
                    .unwrap_or(0)
            })
            .collect();
        handle(&st, &post("/v1/recommend", r#"{"activity": [0], "k": 3}"#)).unwrap();
        for (i, was) in before.iter().enumerate() {
            let now = goalrec_obs::snapshot()
                .counter(&names::shard_requests(i))
                .unwrap_or(0);
            assert_eq!(now, was + 1, "shard {i}");
        }
    }

    #[test]
    fn sharded_healthz_and_stats_report_the_generation_vector() {
        let st = sharded_state(2);
        let health = handle(&st, &get("/healthz")).unwrap();
        let text = String::from_utf8(health.body).unwrap();
        assert!(text.contains("\"generation\":1"), "{text}");
        assert!(text.contains("\"shards\":["), "{text}");
        assert!(text.contains("\"shard\":0"), "{text}");
        assert!(text.contains("\"shard\":1"), "{text}");
        let stats = handle(&st, &get("/v1/stats")).unwrap();
        let text = String::from_utf8(stats.body).unwrap();
        assert!(text.contains("\"shards\""), "{text}");
        assert!(text.contains("\"shard\""), "{text}");
    }

    #[test]
    fn sharded_recommend_still_rejects_bad_input() {
        let st = sharded_state(2);
        assert!(matches!(
            handle(
                &st,
                &post(
                    "/v1/recommend",
                    r#"{"activity": [0], "strategy": "voodoo"}"#
                )
            ),
            Err(ServerError::UnknownStrategy(_))
        ));
        assert!(matches!(
            handle(&st, &post("/v1/recommend", r#"{"activity": [999]}"#)),
            Err(ServerError::Recommend(goalrec_core::Error::UnknownAction(
                999
            )))
        ));
    }

    #[test]
    fn route_counters_tick() {
        let st = state();
        let before = goalrec_obs::snapshot()
            .counter(&names::server_route_requests("healthz"))
            .unwrap_or(0);
        handle(&st, &get("/healthz")).unwrap();
        let after = goalrec_obs::snapshot()
            .counter(&names::server_route_requests("healthz"))
            .unwrap_or(0);
        assert_eq!(after, before + 1);
    }
}
