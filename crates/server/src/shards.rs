//! Serving-side sharding: per-shard swappable snapshots behind the
//! scatter-gather router.
//!
//! `goalrec-serve --shards N` partitions the goal library into `N`
//! sub-models (see `goalrec-shard`) and serves `POST /v1/recommend` by
//! scattering the request across every shard and k-way merging the
//! per-shard results into the exact global top-k. Each shard lives behind
//! its own [`ShardCell`] — the same `RwLock<Arc<…>>` swap discipline as
//! the global [`crate::reload::StateCell`] — so the reload supervisor can
//! rebuild and swap **one shard at a time**: a failed rebuild of shard
//! `i` rolls back shard `i` alone while every other shard keeps serving
//! its current snapshot, and an in-flight request holds the `Arc`s it
//! loaded, so a swap never changes the shards a request is being answered
//! from.
//!
//! Generations are **per shard**: every shard starts at generation 1 and
//! bumps independently on each successful swap. `/healthz` and
//! `/v1/stats` report the full per-shard vector plus a scalar
//! `generation` (the minimum across shards) for probe compatibility.

use crate::error::ServerError;
use goalrec_core::GoalLibrary;
use goalrec_obs::{self as obs, names};
use goalrec_shard::{PartitionMode, ShardModel, ShardScratch, ShardView, ShardedModel};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// One shard's immutable serving snapshot: the compiled sub-model plus
/// its reload lineage. Swapped atomically through a [`ShardCell`].
pub struct ShardState {
    shard: ShardModel,
    generation: u64,
    built_at: Instant,
}

impl ShardState {
    fn new(shard: ShardModel, generation: u64) -> Self {
        ShardState {
            shard,
            generation,
            built_at: Instant::now(),
        }
    }

    /// Which reload generation this shard snapshot is: 1 at startup, +1
    /// per successful swap of **this shard** (shards move independently).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// How long ago this shard snapshot was built.
    pub fn model_age(&self) -> Duration {
        self.built_at.elapsed()
    }
}

impl ShardView for ShardState {
    fn model(&self) -> Option<&goalrec_core::GoalModel> {
        self.shard.model()
    }

    fn impl_global(&self) -> &[u32] {
        self.shard.impl_global()
    }
}

/// The generation-swappable cell holding one shard's snapshot. Same
/// poison-recovering swap discipline as the global `StateCell`.
struct ShardCell {
    slot: RwLock<Arc<ShardState>>,
}

impl ShardCell {
    fn new(initial: ShardState) -> Self {
        ShardCell {
            slot: RwLock::new(Arc::new(initial)),
        }
    }

    fn load(&self) -> Arc<ShardState> {
        // A poisoned lock only means some thread panicked while holding
        // it; the Arc inside is still intact, so recover and serve.
        Arc::clone(&self.slot.read().unwrap_or_else(PoisonError::into_inner))
    }

    fn swap(&self, next: Arc<ShardState>) {
        *self.slot.write().unwrap_or_else(PoisonError::into_inner) = next;
    }
}

/// Pre-resolved per-shard instrumentation handles, so the scatter path
/// never pays the registry's name formatting and lock per request.
struct ShardMetrics {
    requests: Arc<obs::Counter>,
    latency: Arc<obs::Histogram>,
}

/// The sharded serving plane: one swappable cell per shard, the partition
/// policy the library was split under (reloads must re-split the same
/// way), and the per-shard metric handles.
pub struct ShardSet {
    cells: Vec<ShardCell>,
    mode: PartitionMode,
    metrics: Vec<ShardMetrics>,
}

impl ShardSet {
    /// Partitions `library` into `num_shards` sub-models under `mode` and
    /// wraps each in a generation-1 cell. `num_shards` is clamped to
    /// `1..=`[`names::MAX_NAMED_SHARDS`] so every shard gets its own
    /// `span.shard.<i>` name and `shard.<i>.*` metrics.
    pub fn build(
        library: &GoalLibrary,
        num_shards: usize,
        mode: PartitionMode,
    ) -> Result<Self, ServerError> {
        let n = num_shards.clamp(1, names::MAX_NAMED_SHARDS);
        let sharded = ShardedModel::build(library, n, mode).map_err(build_error)?;
        let parts = validate_parts(sharded.into_shards())?;
        let cells: Vec<ShardCell> = parts
            .into_iter()
            .map(|part| ShardCell::new(ShardState::new(part, 1)))
            .collect();
        let metrics = (0..n)
            .map(|i| ShardMetrics {
                requests: obs::counter(&names::shard_requests(i)),
                latency: obs::histogram_ns(&names::shard_latency(i)),
            })
            .collect();
        Ok(ShardSet {
            cells,
            mode,
            metrics,
        })
    }

    /// Number of shards (fixed for the life of the server).
    pub fn num_shards(&self) -> usize {
        self.cells.len()
    }

    /// The partition policy the library was split under.
    pub fn mode(&self) -> PartitionMode {
        self.mode
    }

    /// One shard's current snapshot.
    pub fn load(&self, shard: usize) -> Option<Arc<ShardState>> {
        self.cells.get(shard).map(ShardCell::load)
    }

    /// Loads one consistent-per-shard snapshot vector into `out` (cleared
    /// first). Each entry is independently atomic; the vector as a whole
    /// may mix generations when a swap lands mid-loop — by design, since
    /// shards reload independently (the crate docs call this out).
    pub fn snapshot_into(&self, out: &mut Vec<Arc<ShardState>>) {
        out.clear();
        for cell in &self.cells {
            out.push(cell.load());
        }
    }

    /// The minimum generation across shards — the scalar `generation`
    /// that `/healthz` keeps reporting for probe compatibility.
    pub fn min_generation(&self) -> u64 {
        self.cells
            .iter()
            .map(|cell| cell.load().generation())
            .min()
            .unwrap_or(0)
    }

    /// Records one shard's share of a scatter: request count + latency.
    pub(crate) fn observe(&self, shard: usize, elapsed: Duration) {
        if let Some(m) = self.metrics.get(shard) {
            m.requests.inc();
            m.latency
                .record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Rebuilds **every** shard from `library` (a full sharded reload).
    /// Nothing is swapped unless every sub-model compiles and validates —
    /// the all-or-nothing counterpart of the global state swap.
    pub(crate) fn rebuild_all(
        &self,
        library: &GoalLibrary,
    ) -> Result<Vec<ShardModel>, ServerError> {
        let sharded =
            ShardedModel::build(library, self.num_shards(), self.mode).map_err(build_error)?;
        validate_parts(sharded.into_shards())
    }

    /// Rebuilds **one** shard from `library`, leaving every other cell
    /// untouched. The whole library is re-partitioned under the set's
    /// policy so the target shard's goal assignment stays consistent with
    /// its peers.
    pub(crate) fn rebuild_shard(
        &self,
        library: &GoalLibrary,
        shard: usize,
    ) -> Result<ShardModel, ServerError> {
        if shard >= self.num_shards() {
            return Err(ServerError::BadRequest(format!(
                "shard {shard} out of range (server has {} shards)",
                self.num_shards()
            )));
        }
        let sharded =
            ShardedModel::build(library, self.num_shards(), self.mode).map_err(build_error)?;
        let mut parts = validate_parts(sharded.into_shards())?;
        Ok(parts.swap_remove(shard))
    }

    /// Swaps every cell to its rebuilt sub-model, bumping each shard's
    /// generation by one. Single-writer: only the reload supervisor calls
    /// this, so read-generation-then-swap is race-free.
    pub(crate) fn swap_all(&self, parts: Vec<ShardModel>) {
        for (cell, part) in self.cells.iter().zip(parts) {
            let generation = cell.load().generation() + 1;
            cell.swap(Arc::new(ShardState::new(part, generation)));
        }
    }

    /// Swaps one cell to its rebuilt sub-model, bumping only that shard's
    /// generation. Returns the shard's new generation.
    pub(crate) fn swap_shard(&self, shard: usize, part: ShardModel) -> u64 {
        match self.cells.get(shard) {
            Some(cell) => {
                let generation = cell.load().generation() + 1;
                cell.swap(Arc::new(ShardState::new(part, generation)));
                generation
            }
            None => 0,
        }
    }
}

/// A shard (re)build failure, as a reload-shaped error: the attempt rolls
/// back and whatever was serving keeps serving.
fn build_error(e: goalrec_core::Error) -> ServerError {
    ServerError::ReloadFailed(format!("shard model rebuild failed: {e}"))
}

/// Runs `GoalModel::validate` on every non-empty sub-model — the sharded
/// counterpart of the unsharded reload's validate phase.
fn validate_parts(parts: Vec<ShardModel>) -> Result<Vec<ShardModel>, ServerError> {
    for part in &parts {
        if let Some(model) = part.model() {
            model.validate().map_err(|e| {
                ServerError::ReloadFailed(format!("shard model failed validation: {e}"))
            })?;
        }
    }
    Ok(parts)
}

/// Per-worker sharded-serving arena: the scatter-gather scratch plus the
/// per-request snapshot vector. Owned by each worker thread alongside its
/// core `Scratch`, so steady-state sharded recommends are allocation-free
/// (the snapshot vector's capacity reaches the shard count on the first
/// request and stays).
pub struct ShardArena {
    pub(crate) scratch: ShardScratch,
    pub(crate) snapshots: Vec<Arc<ShardState>>,
}

impl ShardArena {
    /// A fresh arena; buffers grow to steady state on first use.
    pub fn new() -> Self {
        ShardArena {
            scratch: ShardScratch::new(),
            snapshots: Vec::new(),
        }
    }
}

impl Default for ShardArena {
    fn default() -> Self {
        ShardArena::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goalrec_core::LibraryBuilder;

    fn library() -> GoalLibrary {
        let mut b = LibraryBuilder::new();
        b.add_impl("olivier salad", ["potatoes", "carrots", "pickles"])
            .unwrap();
        b.add_impl("mashed potatoes", ["potatoes", "nutmeg", "butter"])
            .unwrap();
        b.add_impl("pan-fried carrots", ["carrots", "nutmeg"])
            .unwrap();
        b.add_impl("pea soup", ["peas", "carrots", "onion"])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_clamped_and_generation_one() {
        let set = ShardSet::build(&library(), 3, PartitionMode::HashGoal).unwrap();
        assert_eq!(set.num_shards(), 3);
        assert_eq!(set.min_generation(), 1);
        for i in 0..3 {
            assert_eq!(set.load(i).unwrap().generation(), 1);
        }
        assert!(set.load(3).is_none());
        // Clamping: 0 shards → 1, absurd counts → MAX_NAMED_SHARDS.
        let one = ShardSet::build(&library(), 0, PartitionMode::HashGoal).unwrap();
        assert_eq!(one.num_shards(), 1);
        let many = ShardSet::build(&library(), 999, PartitionMode::BalancedMass).unwrap();
        assert_eq!(many.num_shards(), names::MAX_NAMED_SHARDS);
    }

    #[test]
    fn swap_shard_bumps_only_that_shard() {
        let lib = library();
        let set = ShardSet::build(&lib, 2, PartitionMode::BalancedMass).unwrap();
        let part = set.rebuild_shard(&lib, 1).unwrap();
        let generation = set.swap_shard(1, part);
        assert_eq!(generation, 2);
        assert_eq!(set.load(0).unwrap().generation(), 1);
        assert_eq!(set.load(1).unwrap().generation(), 2);
        assert_eq!(set.min_generation(), 1);
    }

    #[test]
    fn swap_all_moves_every_shard_in_lockstep() {
        let lib = library();
        let set = ShardSet::build(&lib, 2, PartitionMode::HashGoal).unwrap();
        let parts = set.rebuild_all(&lib).unwrap();
        set.swap_all(parts);
        assert_eq!(set.min_generation(), 2);
        assert_eq!(set.load(0).unwrap().generation(), 2);
        assert_eq!(set.load(1).unwrap().generation(), 2);
    }

    #[test]
    fn held_snapshots_survive_swaps() {
        let lib = library();
        let set = ShardSet::build(&lib, 2, PartitionMode::HashGoal).unwrap();
        let mut held = Vec::new();
        set.snapshot_into(&mut held);
        let part = set.rebuild_shard(&lib, 0).unwrap();
        set.swap_shard(0, part);
        // The request that loaded generation 1 still answers from it.
        assert_eq!(held[0].generation(), 1);
        let mut fresh = Vec::new();
        set.snapshot_into(&mut fresh);
        assert_eq!(fresh[0].generation(), 2);
    }

    #[test]
    fn rebuild_shard_rejects_out_of_range() {
        let lib = library();
        let set = ShardSet::build(&lib, 2, PartitionMode::HashGoal).unwrap();
        assert!(matches!(
            set.rebuild_shard(&lib, 7),
            Err(ServerError::BadRequest(_))
        ));
    }
}
