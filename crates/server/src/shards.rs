//! Serving-side sharding: per-shard swappable snapshots behind the
//! scatter-gather router.
//!
//! `goalrec-serve --shards N` partitions the goal library into `N`
//! sub-models (see `goalrec-shard`) and serves `POST /v1/recommend` by
//! scattering the request across every shard and k-way merging the
//! per-shard results into the exact global top-k. Each shard lives behind
//! its own [`ShardCell`] — the same `RwLock<Arc<…>>` swap discipline as
//! the global [`crate::reload::StateCell`] — so the reload supervisor can
//! rebuild and swap **one shard at a time**: a failed rebuild of shard
//! `i` rolls back shard `i` alone while every other shard keeps serving
//! its current snapshot, and an in-flight request holds the `Arc`s it
//! loaded, so a swap never changes the shards a request is being answered
//! from.
//!
//! Generations are **per shard**: every shard starts at generation 1 and
//! bumps independently on each successful swap. `/healthz` and
//! `/v1/stats` report the full per-shard vector plus a scalar
//! `generation` (the minimum across shards) for probe compatibility.

use crate::error::ServerError;
use goalrec_core::ids::{ActionId, GoalId};
use goalrec_core::{DeltaSegment, GoalLibrary};
use goalrec_obs::{self as obs, names};
use goalrec_shard::{PartitionMode, ShardModel, ShardScratch, ShardView, ShardedModel};
use std::path::{Path, PathBuf};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// The on-disk name of shard `i`'s GRLB v2 snapshot next to the model
/// file `base`: `model.grlb2` → `model.shard3.grlb2`. One family of
/// sibling files per model, so `--shards N` can boot every shard mapped
/// instead of re-partitioning the library.
pub fn shard_snapshot_path(base: &Path, shard: usize) -> PathBuf {
    let stem = base
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "model".to_owned());
    base.with_file_name(format!("{stem}.shard{shard}.grlb2"))
}

/// Writes the per-shard GRLB v2 snapshot family for `library` next to
/// `base` (see [`shard_snapshot_path`]), partitioned exactly as a server
/// started with the same `num_shards`/`mode` would partition it. Returns
/// the written paths. Empty shards (more shards than goals) have no
/// snapshot representation; they make the family incomplete and the
/// server falls back to building from the library, so they are reported
/// as an error here rather than silently producing a family that will
/// never be used.
pub fn persist_shard_family(
    library: &GoalLibrary,
    num_shards: usize,
    mode: PartitionMode,
    base: &Path,
) -> Result<Vec<PathBuf>, ServerError> {
    let n = num_shards.clamp(1, names::MAX_NAMED_SHARDS);
    let sharded = ShardedModel::build(library, n, mode).map_err(build_error)?;
    let mut written = Vec::with_capacity(n);
    for (i, shard) in sharded.shards().iter().enumerate() {
        let Some(model) = shard.model() else {
            return Err(ServerError::ReloadFailed(format!(
                "shard {i} of {n} is empty ({} goals cannot fill {n} shards); \
                 lower --shards to persist a bootable family",
                library.num_goals()
            )));
        };
        let path = shard_snapshot_path(base, i);
        goalrec_datasets::grlb2::write_shard_v2(model, shard.impl_global(), &path).map_err(
            |e| {
                ServerError::ReloadFailed(format!(
                    "cannot persist shard {i} to {}: {e}",
                    path.display()
                ))
            },
        )?;
        written.push(path);
    }
    Ok(written)
}

/// One shard's immutable serving snapshot: the compiled sub-model (shared
/// with its predecessor snapshots across append swaps), the shard's slice
/// of the staged live-append delta, and its reload lineage. Swapped
/// atomically through a [`ShardCell`].
pub struct ShardState {
    shard: Arc<ShardModel>,
    /// This shard's staged appends, `None` between mutations. Carried
    /// inside the snapshot so one `load()` gives a request a coherent
    /// base ⊕ delta pair.
    delta: Option<DeltaSegment>,
    /// Merged `local → global` implementation id map covering base rows
    /// **and** staged rows; empty when nothing is staged (the base map is
    /// served directly).
    merged_global: Vec<u32>,
    generation: u64,
    built_at: Instant,
}

impl ShardState {
    fn new(shard: Arc<ShardModel>, generation: u64) -> Self {
        ShardState {
            shard,
            delta: None,
            merged_global: Vec::new(),
            generation,
            built_at: Instant::now(),
        }
    }

    /// Which reload generation this shard snapshot is: 1 at startup, +1
    /// per successful swap of **this shard** (shards move independently).
    /// Append swaps share the predecessor's generation — the compiled
    /// base did not change.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// How long ago this shard snapshot was built.
    pub fn model_age(&self) -> Duration {
        self.built_at.elapsed()
    }

    /// Live staged implementations on this shard (0 between mutations).
    pub fn staged_len(&self) -> usize {
        self.delta.as_ref().map(DeltaSegment::len).unwrap_or(0)
    }
}

impl ShardView for ShardState {
    fn model(&self) -> Option<&goalrec_core::GoalModel> {
        self.shard.model()
    }

    fn impl_global(&self) -> &[u32] {
        if self.merged_global.is_empty() {
            self.shard.impl_global()
        } else {
            &self.merged_global
        }
    }

    fn delta(&self) -> Option<&DeltaSegment> {
        self.delta.as_ref().filter(|d| !d.is_empty())
    }
}

/// The generation-swappable cell holding one shard's snapshot. Same
/// poison-recovering swap discipline as the global `StateCell`.
struct ShardCell {
    slot: RwLock<Arc<ShardState>>,
}

impl ShardCell {
    fn new(initial: ShardState) -> Self {
        ShardCell {
            slot: RwLock::new(Arc::new(initial)),
        }
    }

    fn load(&self) -> Arc<ShardState> {
        // A poisoned lock only means some thread panicked while holding
        // it; the Arc inside is still intact, so recover and serve.
        Arc::clone(&self.slot.read().unwrap_or_else(PoisonError::into_inner))
    }

    fn swap(&self, next: Arc<ShardState>) {
        *self.slot.write().unwrap_or_else(PoisonError::into_inner) = next;
    }
}

/// Pre-resolved per-shard instrumentation handles, so the scatter path
/// never pays the registry's name formatting and lock per request.
struct ShardMetrics {
    requests: Arc<obs::Counter>,
    latency: Arc<obs::Histogram>,
}

/// The sharded serving plane: one swappable cell per shard, the partition
/// policy the library was split under (reloads must re-split the same
/// way), and the per-shard metric handles.
pub struct ShardSet {
    cells: Vec<ShardCell>,
    mode: PartitionMode,
    metrics: Vec<ShardMetrics>,
    /// The goal → shard placement of the **current** base build — what
    /// live appends are routed by (goal-wholeness is what keeps the
    /// k-way merge exact). Replaced wholesale on a full reload swap.
    assignments: RwLock<Vec<usize>>,
}

impl ShardSet {
    /// Partitions `library` into `num_shards` sub-models under `mode` and
    /// wraps each in a generation-1 cell. `num_shards` is clamped to
    /// `1..=`[`names::MAX_NAMED_SHARDS`] so every shard gets its own
    /// `span.shard.<i>` name and `shard.<i>.*` metrics.
    pub fn build(
        library: &GoalLibrary,
        num_shards: usize,
        mode: PartitionMode,
    ) -> Result<Self, ServerError> {
        let n = num_shards.clamp(1, names::MAX_NAMED_SHARDS);
        let sharded = ShardedModel::build(library, n, mode).map_err(build_error)?;
        let assignments = sharded.assignments().to_vec();
        let parts = validate_parts(sharded.into_shards())?;
        let cells: Vec<ShardCell> = parts
            .into_iter()
            .map(|part| ShardCell::new(ShardState::new(Arc::new(part), 1)))
            .collect();
        let metrics = (0..n)
            .map(|i| ShardMetrics {
                requests: obs::counter(&names::shard_requests(i)),
                latency: obs::histogram_ns(&names::shard_latency(i)),
            })
            .collect();
        Ok(ShardSet {
            cells,
            mode,
            metrics,
            assignments: RwLock::new(assignments),
        })
    }

    /// Boots the shard plane off a persisted GRLB v2 snapshot family next
    /// to `base` (see [`shard_snapshot_path`]) instead of re-partitioning
    /// `library` — the mapped cold-start path of `--shards N`.
    ///
    /// Returns `Ok(None)` when no usable family is there (a snapshot file
    /// missing, or the family was written for a different library: id
    /// spaces or implementation total disagree) — the caller falls back
    /// to [`ShardSet::build`], which is always correct, just slower.
    /// Returns `Err` only for a family that *claims* to match but is
    /// corrupt (failed checksums/structure, or a goal split across
    /// shards), so damage is surfaced rather than silently rebuilt over.
    pub fn open_family(
        base: &Path,
        num_shards: usize,
        mode: PartitionMode,
        library: &GoalLibrary,
    ) -> Result<Option<Self>, ServerError> {
        let n = num_shards.clamp(1, names::MAX_NAMED_SHARDS);
        let paths: Vec<PathBuf> = (0..n).map(|i| shard_snapshot_path(base, i)).collect();
        if !paths.iter().all(|p| p.exists()) {
            return Ok(None);
        }
        let mut parts = Vec::with_capacity(n);
        let mut total_impls = 0usize;
        // Goal placement is re-derived from the snapshots themselves (the
        // format stores no assignment table): every goal with rows lands
        // on the shard holding them, goal-wholeness enforced below. Goals
        // with no implementations anywhere get the same `g % n` fallback
        // as brand-new appended goals.
        let mut assignments: Vec<usize> = vec![usize::MAX; library.num_goals()];
        for (i, path) in paths.iter().enumerate() {
            let (model, impl_global) =
                goalrec_datasets::grlb2::read_shard_v2(path).map_err(|e| {
                    ServerError::ReloadFailed(format!(
                        "shard snapshot {} is unreadable: {e}",
                        path.display()
                    ))
                })?;
            if model.num_actions() != library.num_actions()
                || model.num_goals() != library.num_goals()
            {
                // Stale family from another library — not corruption.
                return Ok(None);
            }
            total_impls += model.num_impls();
            for p in 0..model.num_impls() {
                let g = model
                    .impl_goal(goalrec_core::ids::ImplId::new(
                        u32::try_from(p).unwrap_or(u32::MAX),
                    ))
                    .index();
                let prior = assignments[g];
                if prior != usize::MAX && prior != i {
                    return Err(ServerError::ReloadFailed(format!(
                        "shard family at {} splits goal {g} across shards {prior} and {i}",
                        base.display()
                    )));
                }
                assignments[g] = i;
            }
            parts.push(ShardModel::from_parts(Some(model), impl_global).map_err(|e| {
                ServerError::ReloadFailed(format!(
                    "shard snapshot {} is corrupt: {e}",
                    path.display()
                ))
            })?);
        }
        if total_impls != library.len() {
            // The family covers a different build of this library.
            return Ok(None);
        }
        for (g, a) in assignments.iter_mut().enumerate() {
            if *a == usize::MAX {
                *a = g % n;
            }
        }
        let cells: Vec<ShardCell> = parts
            .into_iter()
            .map(|part| ShardCell::new(ShardState::new(Arc::new(part), 1)))
            .collect();
        let metrics = (0..n)
            .map(|i| ShardMetrics {
                requests: obs::counter(&names::shard_requests(i)),
                latency: obs::histogram_ns(&names::shard_latency(i)),
            })
            .collect();
        Ok(Some(ShardSet {
            cells,
            mode,
            metrics,
            assignments: RwLock::new(assignments),
        }))
    }

    /// The shard that owns appends for `goal`: its placement in the
    /// current base build when the goal exists there, else the
    /// deterministic `g % n` fallback for brand-new goals.
    pub fn owner_of(&self, goal: u32) -> usize {
        let a = self
            .assignments
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        match a.get(GoalId::new(goal).index()) {
            Some(&s) => s,
            None => GoalId::new(goal).index() % self.num_shards().max(1),
        }
    }

    /// Number of shards (fixed for the life of the server).
    pub fn num_shards(&self) -> usize {
        self.cells.len()
    }

    /// The partition policy the library was split under.
    pub fn mode(&self) -> PartitionMode {
        self.mode
    }

    /// One shard's current snapshot.
    pub fn load(&self, shard: usize) -> Option<Arc<ShardState>> {
        self.cells.get(shard).map(ShardCell::load)
    }

    /// Loads one consistent-per-shard snapshot vector into `out` (cleared
    /// first). Each entry is independently atomic; the vector as a whole
    /// may mix generations when a swap lands mid-loop — by design, since
    /// shards reload independently (the crate docs call this out).
    pub fn snapshot_into(&self, out: &mut Vec<Arc<ShardState>>) {
        out.clear();
        for cell in &self.cells {
            out.push(cell.load());
        }
    }

    /// The minimum generation across shards — the scalar `generation`
    /// that `/healthz` keeps reporting for probe compatibility.
    pub fn min_generation(&self) -> u64 {
        self.cells
            .iter()
            .map(|cell| cell.load().generation())
            .min()
            .unwrap_or(0)
    }

    /// Records one shard's share of a scatter: request count + latency.
    pub(crate) fn observe(&self, shard: usize, elapsed: Duration) {
        if let Some(m) = self.metrics.get(shard) {
            m.requests.inc();
            m.latency
                .record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Rebuilds **every** shard from `library` (a full sharded reload).
    /// Nothing is swapped unless every sub-model compiles and validates —
    /// the all-or-nothing counterpart of the global state swap. Returns
    /// the validated sub-models plus the new goal placement, which
    /// [`ShardSet::swap_all`] installs together.
    pub(crate) fn rebuild_all(&self, library: &GoalLibrary) -> Result<RebuiltShards, ServerError> {
        let sharded =
            ShardedModel::build(library, self.num_shards(), self.mode).map_err(build_error)?;
        let assignments = sharded.assignments().to_vec();
        let parts = validate_parts(sharded.into_shards())?;
        Ok(RebuiltShards { parts, assignments })
    }

    /// Rebuilds **one** shard from `library`, leaving every other cell
    /// untouched. The whole library is re-partitioned under the set's
    /// policy so the target shard's goal assignment stays consistent with
    /// its peers.
    pub(crate) fn rebuild_shard(
        &self,
        library: &GoalLibrary,
        shard: usize,
    ) -> Result<ShardModel, ServerError> {
        if shard >= self.num_shards() {
            return Err(ServerError::BadRequest(format!(
                "shard {shard} out of range (server has {} shards)",
                self.num_shards()
            )));
        }
        let sharded =
            ShardedModel::build(library, self.num_shards(), self.mode).map_err(build_error)?;
        let mut parts = validate_parts(sharded.into_shards())?;
        Ok(parts.swap_remove(shard))
    }

    /// Swaps every cell to its rebuilt sub-model (staged deltas dropped —
    /// the caller re-stages any surviving append log on the new bases),
    /// bumping each shard's generation by one and installing the new goal
    /// placement. Single-writer: only the reload supervisor calls this,
    /// so read-generation-then-swap is race-free.
    pub(crate) fn swap_all(&self, rebuilt: RebuiltShards) {
        *self
            .assignments
            .write()
            .unwrap_or_else(PoisonError::into_inner) = rebuilt.assignments;
        for (cell, part) in self.cells.iter().zip(rebuilt.parts) {
            let generation = cell.load().generation() + 1;
            cell.swap(Arc::new(ShardState::new(Arc::new(part), generation)));
        }
    }

    /// Swaps one cell to its rebuilt sub-model, bumping only that shard's
    /// generation. Returns the shard's new generation.
    pub(crate) fn swap_shard(&self, shard: usize, part: ShardModel) -> u64 {
        match self.cells.get(shard) {
            Some(cell) => {
                let generation = cell.load().generation() + 1;
                cell.swap(Arc::new(ShardState::new(Arc::new(part), generation)));
                generation
            }
            None => 0,
        }
    }

    /// Republishes every shard's staged overlay from the full append log.
    /// `entries[i]` is the implementation the merged rebuild will assign
    /// global id `base_total + i`; each entry lands on its owning shard's
    /// delta (see [`ShardSet::owner_of`]) and extends that shard's merged
    /// id map — still monotone, because entries arrive in global id
    /// order. Generations and build times are preserved: the compiled
    /// bases did not change. An empty log clears every staged overlay
    /// (what a successful compaction publishes).
    pub(crate) fn stage_entries(&self, base_total: u32, entries: &[(u32, Vec<u32>)]) {
        for (s, cell) in self.cells.iter().enumerate() {
            let current = cell.load();
            let base = Arc::clone(&current.shard);
            let first = u32::try_from(base.num_impls()).unwrap_or(u32::MAX);
            let (num_actions, num_goals) = match base.model() {
                Some(m) => (m.num_actions(), m.num_goals()),
                None => (0, 0),
            };
            let mut delta = DeltaSegment::new(first, num_actions, num_goals);
            let mut merged: Vec<u32> = Vec::new();
            for (i, (g, actions)) in entries.iter().enumerate() {
                if self.owner_of(*g) != s {
                    continue;
                }
                let staged = delta.append(
                    GoalId::new(*g),
                    actions.iter().copied().map(ActionId::new).collect(),
                );
                // Entries were validated at admission; a reject here
                // (empty action set) cannot occur, but skipping keeps the
                // delta and the merged map aligned regardless.
                if staged.is_ok() {
                    if merged.is_empty() {
                        merged.extend_from_slice(base.impl_global());
                    }
                    merged.push(base_total + u32::try_from(i).unwrap_or(u32::MAX));
                }
            }
            let mut next = ShardState::new(base, current.generation);
            next.built_at = current.built_at;
            if !delta.is_empty() {
                next.delta = Some(delta);
                next.merged_global = merged;
            }
            cell.swap(Arc::new(next));
        }
    }
}

/// The output of [`ShardSet::rebuild_all`]: every shard's validated
/// sub-model plus the goal placement they were partitioned under, swapped
/// in together so append routing can never disagree with the bases.
pub(crate) struct RebuiltShards {
    parts: Vec<ShardModel>,
    assignments: Vec<usize>,
}

/// A shard (re)build failure, as a reload-shaped error: the attempt rolls
/// back and whatever was serving keeps serving.
fn build_error(e: goalrec_core::Error) -> ServerError {
    ServerError::ReloadFailed(format!("shard model rebuild failed: {e}"))
}

/// Runs `GoalModel::validate` on every non-empty sub-model — the sharded
/// counterpart of the unsharded reload's validate phase.
fn validate_parts(parts: Vec<ShardModel>) -> Result<Vec<ShardModel>, ServerError> {
    for part in &parts {
        if let Some(model) = part.model() {
            model.validate().map_err(|e| {
                ServerError::ReloadFailed(format!("shard model failed validation: {e}"))
            })?;
        }
    }
    Ok(parts)
}

/// Per-worker sharded-serving arena: the scatter-gather scratch plus the
/// per-request snapshot vector. Owned by each worker thread alongside its
/// core `Scratch`, so steady-state sharded recommends are allocation-free
/// (the snapshot vector's capacity reaches the shard count on the first
/// request and stays).
pub struct ShardArena {
    pub(crate) scratch: ShardScratch,
    pub(crate) snapshots: Vec<Arc<ShardState>>,
}

impl ShardArena {
    /// A fresh arena; buffers grow to steady state on first use.
    pub fn new() -> Self {
        ShardArena {
            scratch: ShardScratch::new(),
            snapshots: Vec::new(),
        }
    }
}

impl Default for ShardArena {
    fn default() -> Self {
        ShardArena::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goalrec_core::LibraryBuilder;

    fn library() -> GoalLibrary {
        let mut b = LibraryBuilder::new();
        b.add_impl("olivier salad", ["potatoes", "carrots", "pickles"])
            .unwrap();
        b.add_impl("mashed potatoes", ["potatoes", "nutmeg", "butter"])
            .unwrap();
        b.add_impl("pan-fried carrots", ["carrots", "nutmeg"])
            .unwrap();
        b.add_impl("pea soup", ["peas", "carrots", "onion"])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_clamped_and_generation_one() {
        let set = ShardSet::build(&library(), 3, PartitionMode::HashGoal).unwrap();
        assert_eq!(set.num_shards(), 3);
        assert_eq!(set.min_generation(), 1);
        for i in 0..3 {
            assert_eq!(set.load(i).unwrap().generation(), 1);
        }
        assert!(set.load(3).is_none());
        // Clamping: 0 shards → 1, absurd counts → MAX_NAMED_SHARDS.
        let one = ShardSet::build(&library(), 0, PartitionMode::HashGoal).unwrap();
        assert_eq!(one.num_shards(), 1);
        let many = ShardSet::build(&library(), 999, PartitionMode::BalancedMass).unwrap();
        assert_eq!(many.num_shards(), names::MAX_NAMED_SHARDS);
    }

    #[test]
    fn swap_shard_bumps_only_that_shard() {
        let lib = library();
        let set = ShardSet::build(&lib, 2, PartitionMode::BalancedMass).unwrap();
        let part = set.rebuild_shard(&lib, 1).unwrap();
        let generation = set.swap_shard(1, part);
        assert_eq!(generation, 2);
        assert_eq!(set.load(0).unwrap().generation(), 1);
        assert_eq!(set.load(1).unwrap().generation(), 2);
        assert_eq!(set.min_generation(), 1);
    }

    #[test]
    fn swap_all_moves_every_shard_in_lockstep() {
        let lib = library();
        let set = ShardSet::build(&lib, 2, PartitionMode::HashGoal).unwrap();
        let parts = set.rebuild_all(&lib).unwrap();
        set.swap_all(parts);
        assert_eq!(set.min_generation(), 2);
        assert_eq!(set.load(0).unwrap().generation(), 2);
        assert_eq!(set.load(1).unwrap().generation(), 2);
    }

    #[test]
    fn held_snapshots_survive_swaps() {
        let lib = library();
        let set = ShardSet::build(&lib, 2, PartitionMode::HashGoal).unwrap();
        let mut held = Vec::new();
        set.snapshot_into(&mut held);
        let part = set.rebuild_shard(&lib, 0).unwrap();
        set.swap_shard(0, part);
        // The request that loaded generation 1 still answers from it.
        assert_eq!(held[0].generation(), 1);
        let mut fresh = Vec::new();
        set.snapshot_into(&mut fresh);
        assert_eq!(fresh[0].generation(), 2);
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("goalrec-shard-family-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn shard_family_roundtrip_boots_bit_identically() {
        let lib = library();
        let base = tmp("family.grlb2");
        let written = persist_shard_family(&lib, 2, PartitionMode::HashGoal, &base).unwrap();
        assert_eq!(written.len(), 2);
        assert_eq!(written[0], shard_snapshot_path(&base, 0));

        let opened = ShardSet::open_family(&base, 2, PartitionMode::HashGoal, &lib)
            .unwrap()
            .expect("a complete matching family must open");
        let built = ShardSet::build(&lib, 2, PartitionMode::HashGoal).unwrap();
        assert_eq!(opened.num_shards(), built.num_shards());
        for i in 0..2 {
            let a = opened.load(i).unwrap();
            let b = built.load(i).unwrap();
            assert_eq!(a.generation(), 1);
            assert_eq!(a.impl_global(), b.impl_global());
            match (ShardView::model(&*a), ShardView::model(&*b)) {
                (Some(ma), Some(mb)) => {
                    assert_eq!(ma.flat_sections(), mb.flat_sections(), "shard {i}")
                }
                (None, None) => {}
                _ => panic!("shard {i} emptiness disagrees"),
            }
        }
        // Every goal with implementations routes appends to the same
        // shard either way.
        for imp in lib.implementations() {
            let g = imp.goal.raw();
            assert_eq!(opened.owner_of(g), built.owner_of(g), "goal {g}");
        }
    }

    #[test]
    fn shard_family_falls_back_when_incomplete_or_stale_and_rejects_corruption() {
        let lib = library();
        let base = tmp("family-edge.grlb2");
        persist_shard_family(&lib, 2, PartitionMode::HashGoal, &base).unwrap();

        // Fewer files than shards → no family (the caller rebuilds).
        assert!(ShardSet::open_family(&base, 3, PartitionMode::HashGoal, &lib)
            .unwrap()
            .is_none());

        // A family written for a different library is stale, not corrupt.
        let mut b = LibraryBuilder::new();
        b.add_impl("other", ["x", "y"]).unwrap();
        let other = b.build().unwrap();
        assert!(
            ShardSet::open_family(&base, 2, PartitionMode::HashGoal, &other)
                .unwrap()
                .is_none()
        );

        // A flipped byte in one snapshot is surfaced as an error.
        let victim = shard_snapshot_path(&base, 1);
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&victim, &bytes).unwrap();
        assert!(matches!(
            ShardSet::open_family(&base, 2, PartitionMode::HashGoal, &lib),
            Err(ServerError::ReloadFailed(_))
        ));

        // Too many shards for the goal count cannot produce a bootable
        // family, so persisting reports it instead of writing one.
        assert!(persist_shard_family(&lib, 16, PartitionMode::HashGoal, &base).is_err());
    }

    #[test]
    fn rebuild_shard_rejects_out_of_range() {
        let lib = library();
        let set = ShardSet::build(&lib, 2, PartitionMode::HashGoal).unwrap();
        assert!(matches!(
            set.rebuild_shard(&lib, 7),
            Err(ServerError::BadRequest(_))
        ));
    }
}
