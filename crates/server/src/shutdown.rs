//! Cooperative shutdown: a shared flag polled by every server loop, plus
//! optional wiring of that flag to `SIGTERM`/`SIGINT`.
//!
//! The signal path uses the C `signal(2)` entry point directly — std
//! already links libc, so this adds no dependency. The handler does the
//! only async-signal-safe thing possible: store into a process-global
//! atomic. [`Shutdown::is_set`] reads both its own flag (programmatic
//! shutdown, used by tests and `ServerHandle::shutdown`) and the signal
//! flag, so either path drains the server the same way.

use std::os::raw::c_int;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// `SIGHUP` — the classic "reload your configuration" signal; here it
/// asks the server to hot-reload its library file.
pub const SIGHUP: c_int = 1;
/// `SIGINT` — ctrl-c.
pub const SIGINT: c_int = 2;
/// `SIGTERM` — polite termination, e.g. from an orchestrator.
pub const SIGTERM: c_int = 15;

static SIGNAL_RECEIVED: AtomicBool = AtomicBool::new(false);
static RELOAD_SIGNALS: AtomicU64 = AtomicU64::new(0);

extern "C" {
    fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    fn raise(signum: c_int) -> c_int;
}

extern "C" fn on_signal(_signum: c_int) {
    // ordering: Release pairs with the Acquire load in signal_received;
    // the flag itself is the only state the handler publishes.
    SIGNAL_RECEIVED.store(true, Ordering::Release);
}

extern "C" fn on_reload_signal(_signum: c_int) {
    // ordering: Release pairs with the Acquire load in reload_signal_count;
    // the count itself is the only state the handler publishes.
    RELOAD_SIGNALS.fetch_add(1, Ordering::Release);
}

/// Installs the `SIGTERM`/`SIGINT` shutdown handlers and the `SIGHUP`
/// reload handler. Each handler performs a single atomic store/add — the
/// only async-signal-safe things a handler may do. Idempotent; later
/// installs simply re-register the same handlers.
pub fn install_signal_handlers() {
    // Safety: registering async-signal-safe handlers (single atomic
    // operations) for three standard signals; `signal` itself cannot fault.
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
        signal(SIGHUP, on_reload_signal);
    }
}

/// Sends `signum` to the current process, exactly like an external
/// `kill`. Used by the smoke harness to exercise the real signal path.
pub fn raise_signal(signum: c_int) {
    // Safety: raising a signal for which a handler is installed.
    unsafe {
        raise(signum);
    }
}

/// Whether a termination signal has been received by this process.
pub fn signal_received() -> bool {
    // ordering: Acquire pairs with the handler's Release store.
    SIGNAL_RECEIVED.load(Ordering::Acquire)
}

/// How many `SIGHUP` reload requests this process has received. The
/// reload supervisor compares successive readings, so every delivered
/// signal triggers exactly one reload attempt.
pub fn reload_signal_count() -> u64 {
    // ordering: Acquire pairs with the handler's Release increment.
    RELOAD_SIGNALS.load(Ordering::Acquire)
}

/// A cloneable shutdown token shared by the accept loop and the workers.
#[derive(Clone, Default)]
pub struct Shutdown {
    requested: Arc<AtomicBool>,
    /// When true, `is_set` also honours the process-global signal flag.
    watch_signals: bool,
}

impl Shutdown {
    /// A token that only reacts to [`Shutdown::request`].
    pub fn new() -> Self {
        Shutdown {
            requested: Arc::new(AtomicBool::new(false)),
            watch_signals: false,
        }
    }

    /// A token that additionally trips when `SIGTERM`/`SIGINT` arrives
    /// (callers should pair this with [`install_signal_handlers`]).
    pub fn watching_signals() -> Self {
        Shutdown {
            requested: Arc::new(AtomicBool::new(false)),
            watch_signals: true,
        }
    }

    /// Requests shutdown programmatically.
    pub fn request(&self) {
        // ordering: Release pairs with the Acquire load in is_set; shutdown
        // consumers re-check their own queues after observing the flag, so
        // the flag itself is all this store publishes.
        self.requested.store(true, Ordering::Release);
    }

    /// Whether shutdown has been requested (or signalled, for tokens from
    /// [`Shutdown::watching_signals`]).
    pub fn is_set(&self) -> bool {
        // ordering: Acquire pairs with the Release store in request.
        self.requested.load(Ordering::Acquire) || (self.watch_signals && signal_received())
    }

    /// Blocks until the token trips, polling every 25 ms.
    pub fn wait(&self) {
        while !self.is_set() {
            std::thread::sleep(Duration::from_millis(25));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_trips_every_clone() {
        let s = Shutdown::new();
        let c = s.clone();
        assert!(!c.is_set());
        s.request();
        assert!(c.is_set());
    }

    #[test]
    fn plain_tokens_ignore_the_signal_flag() {
        // Cannot raise a real signal here without affecting the whole test
        // process; assert the wiring flag instead.
        let plain = Shutdown::new();
        assert!(!plain.watch_signals);
        let wired = Shutdown::watching_signals();
        assert!(wired.watch_signals);
    }

    #[test]
    fn wait_returns_after_request() {
        let s = Shutdown::new();
        let waiter = {
            let s = s.clone();
            std::thread::spawn(move || s.wait())
        };
        std::thread::sleep(Duration::from_millis(10));
        s.request();
        waiter.join().unwrap();
    }
}
