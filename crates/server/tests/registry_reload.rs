//! Registry continuity across hot reloads (its own test binary, so the
//! process-global metrics registry is not shared with other suites).
//!
//! A model reload swaps the `Arc<AppState>` — but the metric handles
//! live in the process-global registry, so per-strategy histograms must
//! *survive* the generation swap: no reset (counts keep accumulating)
//! and no double-count (one request observes exactly one latency
//! sample). `server.model_generation` must move monotonically.

use goalrec_core::LibraryBuilder;
use goalrec_obs::{self as obs, names};
use goalrec_server::{start, ServerConfig, STRATEGY_NAMES};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn tiny_library() -> goalrec_core::GoalLibrary {
    let mut b = LibraryBuilder::new();
    b.add_impl("olivier salad", ["potatoes", "carrots", "pickles", "peas"])
        .unwrap();
    b.add_impl("mashed potatoes", ["potatoes", "nutmeg", "butter"])
        .unwrap();
    b.add_impl("pan-fried carrots", ["carrots", "nutmeg", "butter"])
        .unwrap();
    b.add_impl("pea soup", ["peas", "carrots", "onion"])
        .unwrap();
    b.build().unwrap()
}

/// API strategy name → the internal name metrics are registered under.
const METRIC_NAMES: &[(&str, &str)] = &[
    ("breadth", "Breadth"),
    ("best-match", "BestMatch"),
    ("focus-cmp", "Focus_cmp"),
    ("focus-cl", "Focus_cl"),
];

fn post_recommend(addr: SocketAddr, strategy: &str) -> u16 {
    let body = format!(r#"{{"activity": [0, 1], "strategy": "{strategy}", "k": 3}}"#);
    let raw = format!(
        "POST /v1/recommend HTTP/1.1\r\nhost: t\r\ncontent-type: application/json\r\n\
         content-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    );
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf).expect("read response");
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
    }
    String::from_utf8_lossy(&head)
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code")
}

fn latency_count(report: &obs::MetricsReport, strategy_metric: &str) -> u64 {
    report
        .histogram(&names::strategy_latency(strategy_metric))
        .map(|h| h.count)
        .unwrap_or(0)
}

#[test]
fn per_strategy_histograms_survive_hot_reloads() {
    let dir = std::env::temp_dir().join("goalrec-registry-reload-test");
    std::fs::create_dir_all(&dir).unwrap();
    let lib_path = dir.join("serving.jsonl");
    goalrec_datasets::io::write_library_jsonl(&tiny_library(), &lib_path).unwrap();

    let cfg = ServerConfig {
        port: 0,
        workers: 2,
        queue_depth: 32,
        deadline: Duration::from_millis(5_000),
        library_path: Some(lib_path.clone()),
        ..ServerConfig::default()
    };
    let handle = start(tiny_library(), cfg).unwrap();
    let addr = handle.local_addr();
    let reload = handle.reload_handle();

    assert_eq!(
        obs::snapshot().gauge(names::SERVER_MODEL_GENERATION),
        Some(1.0),
        "fresh server must serve generation 1"
    );

    // Round 1: two requests per strategy against generation 1.
    for (api, _) in METRIC_NAMES {
        for _ in 0..2 {
            assert_eq!(post_recommend(addr, api), 200);
        }
    }
    let before = obs::snapshot();
    for (_, metric) in METRIC_NAMES {
        assert_eq!(
            latency_count(&before, metric),
            2,
            "strategy {metric} must observe one latency sample per request"
        );
    }

    // Reload #1: generation 1 → 2. The histograms must not reset.
    assert_eq!(reload.reload_blocking(lib_path.clone()), Ok(2));
    let after_reload = obs::snapshot();
    assert_eq!(
        after_reload.gauge(names::SERVER_MODEL_GENERATION),
        Some(2.0),
        "generation gauge must follow the reload"
    );
    for (_, metric) in METRIC_NAMES {
        assert_eq!(
            latency_count(&after_reload, metric),
            2,
            "reloading must not reset strategy {metric} histograms"
        );
    }

    // Round 2: three more requests per strategy against generation 2 —
    // exactly +3 per histogram (no reset, no double-count through the
    // rebuilt recommenders).
    for (api, _) in METRIC_NAMES {
        for _ in 0..3 {
            assert_eq!(post_recommend(addr, api), 200);
        }
    }
    let after_traffic = obs::snapshot();
    for (_, metric) in METRIC_NAMES {
        assert_eq!(
            latency_count(&after_traffic, metric),
            5,
            "strategy {metric} must accumulate across the generation swap"
        );
    }

    // Reload #2: the gauge keeps moving monotonically, 2 → 3.
    assert_eq!(reload.reload_blocking(lib_path), Ok(3));
    assert_eq!(
        obs::snapshot().gauge(names::SERVER_MODEL_GENERATION),
        Some(3.0)
    );

    // Sanity: the API accepts every documented strategy name.
    assert_eq!(STRATEGY_NAMES.len(), METRIC_NAMES.len());
    handle.shutdown();
}
