//! End-to-end tests over real sockets: round-trips for every route,
//! admission control under a saturated queue, deadline expiry, and the
//! zero-drop graceful-drain guarantee.

use goalrec_core::LibraryBuilder;
use goalrec_server::{start, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A small recipe library with enough structure for every strategy.
fn tiny_library() -> goalrec_core::GoalLibrary {
    let mut b = LibraryBuilder::new();
    b.add_impl("olivier salad", ["potatoes", "carrots", "pickles", "peas"])
        .unwrap();
    b.add_impl("mashed potatoes", ["potatoes", "nutmeg", "butter"])
        .unwrap();
    b.add_impl("pan-fried carrots", ["carrots", "nutmeg", "butter"])
        .unwrap();
    b.add_impl("pea soup", ["peas", "carrots", "onion"])
        .unwrap();
    b.build().unwrap()
}

fn config(workers: usize, queue_depth: usize, deadline_ms: u64) -> ServerConfig {
    ServerConfig {
        port: 0, // ephemeral: tests never race over a fixed port
        workers,
        queue_depth,
        deadline: Duration::from_millis(deadline_ms),
        // Pin the admin budget to the data-plane one so deadline tests
        // keep their tight read budget (the pre-parse read is capped by
        // the larger of the two).
        admin_deadline: Duration::from_millis(deadline_ms),
        idle_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    }
}

/// One parsed response: status code, headers (lowercased names), body.
struct Reply {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Reply {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Reads exactly one response off `stream` (keep-alive friendly: stops at
/// content-length instead of waiting for EOF).
fn read_reply(stream: &mut TcpStream) -> Reply {
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = raw.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut buf).expect("read response head");
        assert!(n > 0, "connection closed before a full response head");
        raw.extend_from_slice(&buf[..n]);
    };

    let head = String::from_utf8_lossy(&raw[..header_end]).into_owned();
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line '{status_line}'"));
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();

    let len: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    let mut body = raw[header_end..].to_vec();
    while body.len() < len {
        let n = stream.read(&mut buf).expect("read response body");
        assert!(n > 0, "connection closed mid-body");
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(len);
    Reply {
        status,
        headers,
        body: String::from_utf8_lossy(&body).into_owned(),
    }
}

/// Connection-per-request helper: send `raw`, read one reply.
fn roundtrip(addr: SocketAddr, raw: &str) -> Reply {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw.as_bytes()).expect("write request");
    read_reply(&mut stream)
}

fn get(addr: SocketAddr, path: &str) -> Reply {
    roundtrip(
        addr,
        &format!("GET {path} HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n"),
    )
}

fn post_json(addr: SocketAddr, path: &str, body: &str) -> Reply {
    roundtrip(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-type: application/json\r\n\
             content-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

#[test]
fn routes_round_trip() {
    let handle = start(tiny_library(), config(2, 16, 2_000)).unwrap();
    let addr = handle.local_addr();

    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.header("content-type"), Some("application/json"));
    assert!(
        health.body.contains("\"status\":\"ok\""),
        "body: {}",
        health.body
    );
    assert!(
        health.body.contains("\"generation\":1"),
        "body: {}",
        health.body
    );
    assert!(
        health.body.contains("\"model_age_ms\""),
        "body: {}",
        health.body
    );

    let stats = get(addr, "/v1/stats");
    assert_eq!(stats.status, 200);
    assert_eq!(stats.header("content-type"), Some("application/json"));
    assert!(stats.body.contains("\"stats\""), "body: {}", stats.body);

    let rec = post_json(
        addr,
        "/v1/recommend",
        r#"{"activity": [0, 1], "strategy": "breadth", "k": 3}"#,
    );
    assert_eq!(rec.status, 200, "body: {}", rec.body);
    assert!(
        rec.body.contains("\"recommendations\""),
        "body: {}",
        rec.body
    );

    // Defaults: no strategy/k keys.
    let rec = post_json(addr, "/v1/recommend", r#"{"activity": [0]}"#);
    assert_eq!(rec.status, 200, "body: {}", rec.body);

    let metrics = get(addr, "/metrics");
    assert_eq!(metrics.status, 200);
    assert!(
        metrics.body.contains("server.requests"),
        "body: {}",
        metrics.body
    );

    assert_eq!(get(addr, "/nope").status, 404);
    assert_eq!(get(addr, "/v1/recommend").status, 405);
    assert_eq!(
        post_json(addr, "/v1/recommend", r#"{"activity": [999]}"#).status,
        400
    );
    assert_eq!(post_json(addr, "/v1/recommend", "{not json").status, 400);

    handle.shutdown();
}

/// Hot reload end to end: path-less admin reload re-reads the startup
/// file, explicit paths load other files, a corrupt file answers 500 and
/// rolls back (old generation keeps serving), and `SIGHUP` reloads like
/// the admin endpoint does. One test on purpose: `SIGHUP` is
/// process-global, so raising it concurrently with the other reload
/// assertions would race.
#[test]
fn hot_reload_swaps_generations_and_rolls_back_on_bad_files() {
    let dir = std::env::temp_dir().join("goalrec-server-reload-test");
    std::fs::create_dir_all(&dir).unwrap();
    let lib_path = dir.join("serving.jsonl");
    goalrec_datasets::io::write_library_jsonl(&tiny_library(), &lib_path).unwrap();

    let mut cfg = config(2, 16, 2_000);
    cfg.library_path = Some(lib_path.clone());
    let handle = start(tiny_library(), cfg).unwrap();
    let addr = handle.local_addr();

    // Path-less reload re-reads the startup file → generation 2.
    let reply = post_json(addr, "/v1/admin/reload", "");
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    assert!(
        reply.body.contains("\"generation\":2"),
        "body: {}",
        reply.body
    );
    assert!(
        get(addr, "/healthz").body.contains("\"generation\":2"),
        "healthz must report the reloaded generation"
    );

    // A corrupt file answers 500; generation 2 keeps serving.
    let bad = dir.join("corrupt.jsonl");
    std::fs::write(&bad, b"{definitely not a library}\n").unwrap();
    let reply = post_json(
        addr,
        "/v1/admin/reload",
        &format!(r#"{{"path": "{}"}}"#, bad.display()),
    );
    assert_eq!(reply.status, 500, "body: {}", reply.body);
    assert!(
        get(addr, "/healthz").body.contains("\"generation\":2"),
        "failed reload must leave the old generation serving"
    );
    assert_eq!(
        post_json(addr, "/v1/recommend", r#"{"activity": [0]}"#).status,
        200,
        "requests must keep being served after a failed reload"
    );

    // An explicit good path (binary this time) → generation 3.
    let good = dir.join("replacement.grlb");
    goalrec_datasets::binary::write_library_binary(&tiny_library(), &good).unwrap();
    let reply = post_json(
        addr,
        "/v1/admin/reload",
        &format!(r#"{{"path": "{}"}}"#, good.display()),
    );
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    assert!(
        reply.body.contains("\"generation\":3"),
        "body: {}",
        reply.body
    );

    // SIGHUP drives the same path as a path-less admin reload.
    goalrec_server::shutdown::install_signal_handlers();
    goalrec_server::shutdown::raise_signal(goalrec_server::shutdown::SIGHUP);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if get(addr, "/healthz").body.contains("\"generation\":4") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "SIGHUP did not trigger a reload within 5s"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    handle.shutdown();
}

/// Polls `/healthz` until `needle` appears in the body (or panics after
/// five seconds) — how the tests observe background swaps landing.
fn wait_for_healthz(addr: SocketAddr, needle: &str) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        if get(addr, "/healthz").body.contains(needle) {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "healthz never reported {needle}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// The live mutation plane end to end: appends stage over HTTP without a
/// generation bump (including a brand-new action id, recommendable
/// immediately), the configured threshold compacts in the background into
/// generation 2 with an empty delta, and the compacted library is
/// persisted back to the serving file.
#[test]
fn live_appends_stage_then_background_compaction_lands() {
    let dir = std::env::temp_dir().join("goalrec-server-live-append-test");
    std::fs::create_dir_all(&dir).unwrap();
    let lib_path = dir.join("serving.jsonl");
    goalrec_datasets::io::write_library_jsonl(&tiny_library(), &lib_path).unwrap();
    let wal = lib_path.with_extension("jsonl.wal");
    let _ = std::fs::remove_file(&wal);

    let mut cfg = config(2, 16, 2_000);
    cfg.library_path = Some(lib_path.clone());
    cfg.compact_threshold = 2; // auto-compact once two rows are staged
    let handle = start(tiny_library(), cfg).unwrap();
    let addr = handle.local_addr();

    // Single-object form: stages one row, generation stays 1.
    let reply = post_json(
        addr,
        "/v1/admin/library/append",
        r#"{"goal": 0, "actions": [0, 6]}"#,
    );
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    assert!(
        reply.body.contains("\"appended\":1"),
        "body: {}",
        reply.body
    );
    assert!(
        reply.body.contains("\"delta_size\":1"),
        "body: {}",
        reply.body
    );
    assert!(
        reply.body.contains("\"generation\":1"),
        "body: {}",
        reply.body
    );

    // Batch form, introducing action id 7 (one past the base id space):
    // it must be recommendable immediately, with no rebuild in between.
    let reply = post_json(
        addr,
        "/v1/admin/library/append",
        r#"{"implementations": [{"goal": 3, "actions": [3, 7]}]}"#,
    );
    assert_eq!(reply.status, 200, "body: {}", reply.body);
    let rec = post_json(addr, "/v1/recommend", r#"{"activity": [7], "k": 2}"#);
    assert_eq!(rec.status, 200, "staged action must serve: {}", rec.body);

    // Threshold reached → the supervisor compacts in the background.
    wait_for_healthz(addr, "\"generation\":2");
    wait_for_healthz(addr, "\"delta_size\":0");

    // The compacted generation still serves the appended action, and the
    // merged library was persisted back to the serving file (WAL cleared).
    let rec = post_json(addr, "/v1/recommend", r#"{"activity": [7], "k": 2}"#);
    assert_eq!(rec.status, 200, "compacted action must serve: {}", rec.body);
    let on_disk = goalrec_datasets::io::read_library_auto(&lib_path).unwrap();
    assert_eq!(on_disk.len(), tiny_library().len() + 2);
    assert_eq!(std::fs::read(&wal).map(|b| b.len()).unwrap_or(0), 0);

    handle.shutdown();
}

/// The append body cap is enforced over HTTP with a typed `413`, and a
/// malformed row answers `400` naming the offending field.
#[test]
fn append_cap_and_schema_errors_have_typed_statuses() {
    let mut cfg = config(1, 8, 2_000);
    cfg.append_max_entries = 1;
    let handle = start(tiny_library(), cfg).unwrap();
    let addr = handle.local_addr();

    let reply = post_json(
        addr,
        "/v1/admin/library/append",
        r#"{"implementations": [{"goal": 0, "actions": [0]}, {"goal": 1, "actions": [1]}]}"#,
    );
    assert_eq!(reply.status, 413, "body: {}", reply.body);
    assert!(
        reply.body.contains("per-request cap"),
        "body: {}",
        reply.body
    );

    let reply = post_json(addr, "/v1/admin/library/append", r#"{"goal": 0}"#);
    assert_eq!(reply.status, 400, "body: {}", reply.body);
    assert!(
        reply.body.contains("field `actions`"),
        "the error must name the offending field: {}",
        reply.body
    );

    handle.shutdown();
}

/// Admin routes run on their own deadline: a body that dribbles in past
/// the data-plane deadline 408s on `/v1/recommend` but is answered on
/// `/v1/admin/reload`, which is budgeted by `admin_deadline`.
#[test]
fn admin_routes_get_their_own_deadline() {
    let dir = std::env::temp_dir().join("goalrec-server-admin-deadline-test");
    std::fs::create_dir_all(&dir).unwrap();
    let lib_path = dir.join("serving.jsonl");
    goalrec_datasets::io::write_library_jsonl(&tiny_library(), &lib_path).unwrap();

    let mut cfg = config(2, 8, 150);
    cfg.admin_deadline = Duration::from_secs(5);
    cfg.library_path = Some(lib_path);
    let handle = start(tiny_library(), cfg).unwrap();
    let addr = handle.local_addr();

    let slow_post = |path: &str, body: &str| {
        let mut stream = TcpStream::connect(addr).expect("connect");
        let (head, tail) = body.split_at(body.len() / 2);
        stream
            .write_all(
                format!(
                    "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\
                     connection: close\r\n\r\n{head}",
                    body.len()
                )
                .as_bytes(),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(400)); // past 150ms, inside 5s
        stream.write_all(tail.as_bytes()).unwrap();
        read_reply(&mut stream)
    };

    let reply = slow_post("/v1/recommend", r#"{"activity": [0], "k": 2}"#);
    assert_eq!(reply.status, 408, "data plane must keep the tight deadline");

    let reply = slow_post("/v1/admin/reload", "{}");
    assert_eq!(
        reply.status, 200,
        "admin plane must run on its own budget: {}",
        reply.body
    );

    handle.shutdown();
}

/// `--watch` end to end: overwriting the library file on disk triggers a
/// debounced background reload into generation 2.
#[test]
fn watch_mode_reloads_on_library_file_changes() {
    let dir = std::env::temp_dir().join("goalrec-server-watch-test");
    std::fs::create_dir_all(&dir).unwrap();
    let lib_path = dir.join("serving.jsonl");
    goalrec_datasets::io::write_library_jsonl(&tiny_library(), &lib_path).unwrap();

    let mut cfg = config(1, 8, 2_000);
    cfg.library_path = Some(lib_path.clone());
    cfg.watch = true;
    let handle = start(tiny_library(), cfg).unwrap();
    let addr = handle.local_addr();
    assert!(get(addr, "/healthz").body.contains("\"generation\":1"));

    // Grow the library on disk (atomic rename → one mtime step, so the
    // debounce clears after one extra poll tick).
    let mut b = LibraryBuilder::new();
    b.add_impl("olivier salad", ["potatoes", "carrots", "pickles", "peas"])
        .unwrap();
    b.add_impl("mashed potatoes", ["potatoes", "nutmeg", "butter"])
        .unwrap();
    b.add_impl("pan-fried carrots", ["carrots", "nutmeg", "butter"])
        .unwrap();
    b.add_impl("pea soup", ["peas", "carrots", "onion"])
        .unwrap();
    b.add_impl("carrot cake", ["carrots", "flour", "sugar"])
        .unwrap();
    goalrec_datasets::io::write_library_jsonl(&b.build().unwrap(), &lib_path).unwrap();

    wait_for_healthz(addr, "\"generation\":2");
    handle.shutdown();
}

#[test]
fn saturated_queue_answers_503_not_hangs() {
    // One worker, queue depth one: a pinned keep-alive connection occupies
    // the worker, a second fills the queue, a third must be turned away.
    let handle = start(tiny_library(), config(1, 1, 2_000)).unwrap();
    let addr = handle.local_addr();

    let mut pinned = TcpStream::connect(addr).expect("connect pinned");
    pinned
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
        .unwrap();
    let first = read_reply(&mut pinned);
    assert_eq!(first.status, 200);
    // `pinned` is now a live keep-alive session holding the only worker.

    let mut queued = TcpStream::connect(addr).expect("connect queued");
    queued
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
        .unwrap();
    std::thread::sleep(Duration::from_millis(150)); // let it land in the queue

    let rejected = get(addr, "/healthz");
    assert_eq!(rejected.status, 503, "expected admission-control rejection");
    assert_eq!(rejected.header("retry-after"), Some("1"));

    // Releasing the worker lets the queued connection get served.
    drop(pinned);
    let second = read_reply(&mut queued);
    assert_eq!(second.status, 200);

    handle.shutdown();
}

#[test]
fn slow_request_gets_408() {
    let handle = start(tiny_library(), config(1, 4, 300)).unwrap();
    let addr = handle.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    // A forever-unfinished request line: the deadline must fire.
    stream.write_all(b"GET /heal").unwrap();
    let reply = read_reply(&mut stream);
    assert_eq!(reply.status, 408);

    handle.shutdown();
}

#[test]
fn graceful_drain_drops_no_admitted_request() {
    let handle = start(tiny_library(), config(2, 64, 5_000)).unwrap();
    let addr = handle.local_addr();

    // Eight clients connect and send a full request each, *then* shutdown
    // is requested. Every one of them must still get a 200.
    let clients: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                let body = format!(r#"{{"activity": [{}], "k": 2}}"#, i % 4);
                stream
                    .write_all(
                        format!(
                            "POST /v1/recommend HTTP/1.1\r\nhost: t\r\n\
                             content-length: {}\r\nconnection: close\r\n\r\n{body}",
                            body.len()
                        )
                        .as_bytes(),
                    )
                    .expect("write request");
                read_reply(&mut stream).status
            })
        })
        .collect();

    // Give the requests time to hit the OS backlog, then drain.
    std::thread::sleep(Duration::from_millis(100));
    handle.shutdown();

    for client in clients {
        let status = client.join().expect("client thread");
        assert_eq!(status, 200, "an admitted request was dropped during drain");
    }
}
