//! The scatter-gather ranking itself.
//!
//! [`ShardStrategy::scatter`] runs one shard's share of the work into that
//! shard's [`crate::scratch::ShardSlot`]; [`ShardStrategy::gather`] merges
//! the per-shard results into the global top-k. The contract is
//! **bit-exactness**: for every supported strategy the merged ranking is
//! identical — ids, scores and tie-break order — to running the strategy's
//! `rank_into` on the unsharded model (`tests/exactness.rs` proves it
//! property-style). The merge is exact because shards partition the
//! implementation set by goal; see the [crate docs](crate) for the
//! per-strategy argument.
//!
//! Both phases run on a caller-owned [`ShardScratch`] arena and allocate
//! nothing at steady state (`tests/alloc_counting.rs`).

use crate::model::ShardView;
use crate::scratch::{ShardScratch, ShardSlot};
use goalrec_core::activity::Activity;
use goalrec_core::distance::DistanceMetric;
use goalrec_core::ids::{ActionId, ImplId};
use goalrec_core::live::{self as live_view, AssocView};
use goalrec_core::profile::goal_space_and_profile_into;
use goalrec_core::setops;
use goalrec_core::strategies::{Breadth, Focus, FocusVariant, Strategy};
use goalrec_core::topk::{kway_next, Scored};
use std::cmp::Ordering;

/// A strategy that can be served through the scatter-gather path.
///
/// Mirrors the subset of [`goalrec_core::strategies`] whose rankings
/// decompose exactly over a goal partition — the weighted variants are
/// deliberately absent (their cross-goal `f64` summation order differs
/// between the sharded and unsharded paths, breaking bit-exactness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShardStrategy {
    /// The Breadth strategy (§5.2): per-shard integer partial sums merged
    /// on a `u64` scoreboard.
    Breadth,
    /// A Focus variant (§5.1): per-shard implementation rankings k-way
    /// merged under (score desc, global implementation id asc), replaying
    /// the unsharded fill loop.
    Focus(FocusVariant),
    /// Best Match (§5.3) with the given metric: disjoint per-shard goal
    /// spaces merged, candidates re-scored against the merged profile.
    BestMatch(DistanceMetric),
}

impl ShardStrategy {
    /// Every shardable strategy, in documentation order.
    pub const ALL: [ShardStrategy; 6] = [
        ShardStrategy::Breadth,
        ShardStrategy::Focus(FocusVariant::Completeness),
        ShardStrategy::Focus(FocusVariant::Closeness),
        ShardStrategy::BestMatch(DistanceMetric::Cosine),
        ShardStrategy::BestMatch(DistanceMetric::Euclidean),
        ShardStrategy::BestMatch(DistanceMetric::Manhattan),
    ];

    /// Resolves the serving API's strategy spelling (`breadth` |
    /// `best-match` | `focus-cmp` | `focus-cl`) to its sharded
    /// counterpart. `best-match` uses the cosine metric, matching the
    /// unsharded server's default.
    pub fn for_api_name(name: &str) -> Option<Self> {
        match name {
            "breadth" => Some(Self::Breadth),
            "focus-cmp" => Some(Self::Focus(FocusVariant::Completeness)),
            "focus-cl" => Some(Self::Focus(FocusVariant::Closeness)),
            "best-match" => Some(Self::BestMatch(DistanceMetric::Cosine)),
            _ => None,
        }
    }

    /// The unsharded strategy's display name (matches
    /// [`Strategy::name`]).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Breadth => "Breadth",
            Self::Focus(FocusVariant::Completeness) => "Focus_cmp",
            Self::Focus(FocusVariant::Closeness) => "Focus_cl",
            Self::BestMatch(_) => "BestMatch",
        }
    }

    /// Runs shard `idx`'s share of the work for `activity` into the
    /// arena's slot `idx`. Safe to call for empty shards (the slot is
    /// cleared so the merge sees no stale state) and in any shard order —
    /// slots are independent, which is what lets the serving layer scatter
    /// across differently-generated per-shard snapshots.
    pub fn scatter<V: ShardView>(
        &self,
        shard: &V,
        idx: usize,
        activity: &Activity,
        scratch: &mut ShardScratch,
    ) {
        scratch.ensure_shards(idx + 1);
        let slot = &mut scratch.slots[idx];
        slot.clear();
        let live = shard.live();
        if live.is_vacant() || activity.is_empty() {
            return;
        }
        match self {
            Self::Breadth => {
                // Full per-shard ranking (k = |𝒜| keeps every candidate):
                // integer-valued partial sums the gather phase adds up.
                // `rank_live_into` dispatches to the plain model when the
                // shard has no staged delta, keeping the steady-state path
                // byte-identical to the pre-delta one.
                Breadth.rank_live_into(live, activity, live.num_actions(), &mut slot.scratch);
            }
            Self::Focus(variant) => {
                // Rank this shard's candidate implementations only; the
                // fill loop runs globally in the gather phase.
                match (live.delta(), live.base()) {
                    (None, Some(model)) => {
                        Focus::new(*variant).rank_impls_into(model, activity, &mut slot.scratch);
                    }
                    _ => Focus::new(*variant).rank_impls_into(&live, activity, &mut slot.scratch),
                }
            }
            Self::BestMatch(_) => match (live.delta(), live.base()) {
                (None, Some(model)) => scatter_best_match(model, activity.raw(), slot),
                _ => scatter_best_match(&live, activity.raw(), slot),
            },
        }
    }

    /// Merges the per-shard scatter results in the arena into the global
    /// top-`k`, leaving the ranking in [`ShardScratch::out`] and returning
    /// the candidate count (same meaning as the unsharded
    /// `rank_into` for Focus and Best Match; for Breadth it counts the
    /// merged candidate pool, which excludes already-performed actions).
    pub fn gather<V: ShardView>(
        &self,
        shards: &[V],
        activity: &Activity,
        k: usize,
        scratch: &mut ShardScratch,
    ) -> usize {
        scratch.ensure_shards(shards.len());
        scratch.out.clear();
        if k == 0 || activity.is_empty() {
            return 0;
        }
        match self {
            Self::Breadth => gather_breadth(shards, k, scratch),
            Self::Focus(_) => gather_focus(shards, activity, k, scratch),
            Self::BestMatch(metric) => gather_best_match(shards, *metric, k, scratch),
        }
    }

    /// Convenience scatter-all-then-gather over a uniform shard slice.
    /// The serving layer drives the phases separately (it wraps each
    /// scatter in a per-shard trace span); tests and offline callers use
    /// this.
    pub fn rank_into<V: ShardView>(
        &self,
        shards: &[V],
        activity: &Activity,
        k: usize,
        scratch: &mut ShardScratch,
    ) -> usize {
        if k > 0 && !activity.is_empty() {
            for (i, shard) in shards.iter().enumerate() {
                self.scatter(shard, i, activity, scratch);
            }
        }
        self.gather(shards, activity, k, scratch)
    }
}

/// The Best Match scatter body, generic over the association view so one
/// pass serves both a plain shard model and a base ⊕ delta overlay:
/// per-shard goal space + partial profile + candidate pool; scoring
/// happens in the gather phase against the merged global profile.
fn scatter_best_match<V: AssocView + ?Sized>(view: &V, h: &[u32], slot: &mut ShardSlot) {
    goal_space_and_profile_into(view, h, &mut slot.pairs, &mut slot.space, &mut slot.profile);
    live_view::implementation_space_into(view, h, &mut slot.impl_space);
    live_view::action_space_into(view, h, &slot.impl_space, &mut slot.cand);
}

/// Breadth merge: per-action scores are integer sums over `IS(H)`, and the
/// per-shard implementation spaces partition `IS(H)`, so summing the
/// per-shard partial scores in `u64` is order-independent and exact.
fn gather_breadth<V: ShardView>(shards: &[V], k: usize, scratch: &mut ShardScratch) -> usize {
    // Action extents come from the live views: a staged delta may have
    // introduced actions beyond any compiled base model's id space.
    let num_actions = shards
        .iter()
        .map(|s| s.live().num_actions())
        .max()
        .unwrap_or(0);
    let ShardScratch {
        slots,
        board,
        topk,
        out,
        ..
    } = scratch;
    board.begin(num_actions);
    for slot in slots.iter().take(shards.len()) {
        for sc in slot.scratch.out() {
            // Per-shard Breadth scores are exact small integers in f64
            // (counts of implementation overlaps), so the u64 round-trip
            // is lossless.
            board.add(sc.action, sc.score as u64);
        }
    }
    topk.reset(k);
    for &a in board.touched() {
        topk.push(Scored::new(a, board.get(a) as f64));
    }
    topk.drain_sorted_into(out);
    board.touched().len()
}

/// Orders Focus implementation entries `(score, impl id)` best-first:
/// score descending, id ascending — the same total order the per-shard
/// sort uses, lifted to global implementation ids.
fn focus_entry_cmp(a: &(f64, u32), b: &(f64, u32)) -> Ordering {
    // Focus scores are in (0, 1] — never NaN — so partial_cmp is total.
    b.0.partial_cmp(&a.0)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.1.cmp(&b.1))
}

/// Focus merge: the per-shard candidate implementation sets are disjoint
/// and each shard's ranking is sorted under the global total order
/// (`impl_global` is monotone), so a k-way merge visits implementations in
/// exactly the unsharded rank order and the fill loop can be replayed
/// verbatim.
fn gather_focus<V: ShardView>(
    shards: &[V],
    activity: &Activity,
    k: usize,
    scratch: &mut ShardScratch,
) -> usize {
    let n = shards.len();
    let ShardScratch {
        slots,
        heads,
        seen,
        remaining,
        out,
        ..
    } = scratch;
    heads[..n].fill(0);
    let num_candidates: usize = slots
        .iter()
        .take(n)
        .map(|s| s.scratch.scored_impls().len())
        .sum();

    let h = activity.raw();
    seen.clear();
    seen.extend_from_slice(h);
    'fill: loop {
        let next = kway_next(
            n,
            heads,
            |i, pos| {
                let (score, local) = *slots[i].scratch.scored_impls().get(pos)?;
                let global = *shards[i]
                    .impl_global()
                    .get(usize::try_from(local).unwrap_or(usize::MAX))?;
                Some((score, global))
            },
            focus_entry_cmp,
        );
        let Some(s) = next else { break };
        let (score, local) = slots[s].scratch.scored_impls()[heads[s] - 1];
        let live = shards[s].live();
        if live.is_vacant() {
            continue;
        }
        // The unsharded fill loop (Focus::rank_into), verbatim: emit the
        // implementation's not-yet-seen actions at its score, growing the
        // exclusion set as we go. The live view dispatches a staged local
        // id to the delta and a compiled one to the base model.
        setops::difference_into(live.impl_actions(ImplId::new(local)), seen, remaining);
        for &a in remaining.iter() {
            out.push(Scored::new(ActionId::new(a), score));
            if let Err(pos) = seen.binary_search(&a) {
                seen.insert(pos, a);
            }
            if out.len() == k {
                break 'fill;
            }
        }
    }
    num_candidates
}

/// Best Match merge: the per-shard goal spaces are disjoint, so the global
/// space/profile is a plain k-way merge (no summation); candidates are the
/// deduplicated union of the per-shard pools; and every goal coordinate of
/// a candidate's vector is computed entirely on that goal's home shard, so
/// the distance inputs are bit-identical to the unsharded path.
fn gather_best_match<V: ShardView>(
    shards: &[V],
    metric: DistanceMetric,
    k: usize,
    scratch: &mut ShardScratch,
) -> usize {
    let n = shards.len();
    let ShardScratch {
        slots,
        heads,
        gspace,
        gprofile,
        candidates,
        vec,
        topk,
        out,
        ..
    } = scratch;

    // Merged goal space + profile. The streams never share a goal, so the
    // merge is a disjoint interleave: no key ever needs its counts summed.
    // One shard degenerates to a copy — its stream is already sorted —
    // which keeps the single-shard configuration priced like the unsharded
    // path (the `--perf` guardrail holds it to 10%).
    gspace.clear();
    gprofile.clear();
    if n == 1 {
        gspace.extend_from_slice(&slots[0].space);
        gprofile.extend_from_slice(&slots[0].profile.counts);
    } else {
        heads[..n].fill(0);
        while let Some(s) = kway_next(
            n,
            heads,
            |i, pos| slots[i].space.get(pos).copied(),
            |a, b| a.cmp(b),
        ) {
            let pos = heads[s] - 1;
            gspace.push(slots[s].space[pos]);
            gprofile.push(slots[s].profile.counts[pos]);
        }
    }
    if gspace.is_empty() {
        // Matches the unsharded early return for an empty goal space.
        return 0;
    }

    // Merged candidate pool: deduplicated union of the per-shard
    // `AS_s(H) − H` pools (an action can appear on several shards; a
    // single shard's pool is already sorted and unique, so copy it).
    candidates.clear();
    if n == 1 {
        candidates.extend_from_slice(&slots[0].cand);
    } else {
        heads[..n].fill(0);
        while let Some(s) = kway_next(
            n,
            heads,
            |i, pos| slots[i].cand.get(pos).copied(),
            |a, b| a.cmp(b),
        ) {
            let v = slots[s].cand[heads[s] - 1];
            if candidates.last() != Some(&v) {
                candidates.push(v);
            }
        }
    }
    let num_candidates = candidates.len();

    // Score each candidate against the merged profile. Every goal's
    // implementations live on one shard, so walking all shards feeds each
    // coordinate from exactly one source — the resulting vector equals the
    // unsharded one bit-for-bit, and so does the distance. Reads go
    // through each shard's live view: base postings first, then staged
    // ones, with out-of-range actions (introduced by another shard's
    // delta) reading as empty rows.
    topk.reset(k);
    vec.reset(gspace);
    for &a in candidates.iter() {
        vec.counts.iter_mut().for_each(|c| *c = 0.0);
        for shard in shards {
            let live = shard.live();
            if live.is_vacant() {
                continue;
            }
            let (base, delta) = live.action_impls_parts(ActionId::new(a));
            for &p in base.iter().chain(delta) {
                vec.add(live.impl_goal(ImplId::new(p)), 1.0);
            }
        }
        let dist = metric.distance(gprofile, &vec.counts);
        topk.push(Scored::new(ActionId::new(a), -dist));
    }
    topk.drain_sorted_into(out);
    num_candidates
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ShardedModel;
    use crate::partition::PartitionMode;
    use goalrec_core::scratch::Scratch;
    use goalrec_core::strategies::BestMatch;
    use goalrec_core::{GoalLibrary, GoalModel, LibraryBuilder};

    /// Example 3.2 / Figure 1 library.
    fn example_library() -> GoalLibrary {
        let mut b = LibraryBuilder::new();
        b.add_impl("g1", ["a1", "a2"]).unwrap();
        b.add_impl("g1", ["a1", "a3"]).unwrap();
        b.add_impl("g2", ["a1", "a4", "a5"]).unwrap();
        b.add_impl("g3", ["a4", "a6"]).unwrap();
        b.add_impl("g5", ["a1", "a2", "a6"]).unwrap();
        b.build().unwrap()
    }

    fn unsharded(
        strategy: &ShardStrategy,
        model: &GoalModel,
        h: &Activity,
        k: usize,
    ) -> (Vec<Scored>, usize) {
        let mut scratch = Scratch::default();
        let n = match strategy {
            ShardStrategy::Breadth => Breadth.rank_into(model, h, k, &mut scratch),
            ShardStrategy::Focus(v) => Focus::new(*v).rank_into(model, h, k, &mut scratch),
            ShardStrategy::BestMatch(m) => BestMatch::new(*m).rank_into(model, h, k, &mut scratch),
        };
        (scratch.out().to_vec(), n)
    }

    #[test]
    fn api_name_round_trip() {
        assert_eq!(
            ShardStrategy::for_api_name("breadth"),
            Some(ShardStrategy::Breadth)
        );
        assert_eq!(
            ShardStrategy::for_api_name("focus-cmp"),
            Some(ShardStrategy::Focus(FocusVariant::Completeness))
        );
        assert_eq!(
            ShardStrategy::for_api_name("focus-cl"),
            Some(ShardStrategy::Focus(FocusVariant::Closeness))
        );
        assert_eq!(
            ShardStrategy::for_api_name("best-match"),
            Some(ShardStrategy::BestMatch(DistanceMetric::Cosine))
        );
        assert_eq!(ShardStrategy::for_api_name("weighted-breadth"), None);
        assert_eq!(ShardStrategy::for_api_name(""), None);
    }

    #[test]
    fn names_match_the_unsharded_strategies() {
        assert_eq!(ShardStrategy::Breadth.name(), Breadth.name());
        assert_eq!(
            ShardStrategy::Focus(FocusVariant::Completeness).name(),
            Focus::new(FocusVariant::Completeness).name()
        );
        assert_eq!(
            ShardStrategy::Focus(FocusVariant::Closeness).name(),
            Focus::new(FocusVariant::Closeness).name()
        );
        assert_eq!(
            ShardStrategy::BestMatch(DistanceMetric::Cosine).name(),
            BestMatch::default().name()
        );
    }

    #[test]
    fn sharded_matches_unsharded_on_the_paper_example() {
        let lib = example_library();
        let model = GoalModel::build(&lib).unwrap();
        let activities = [
            Activity::from_raw([0]),
            Activity::from_raw([0, 1]),
            Activity::from_raw([1, 2]),
            Activity::from_raw([3]),
            Activity::from_raw([1, 2, 5]),
        ];
        for strategy in ShardStrategy::ALL {
            for mode in [PartitionMode::HashGoal, PartitionMode::BalancedMass] {
                for n in [1usize, 2, 3, 7] {
                    let sharded = ShardedModel::build(&lib, n, mode).unwrap();
                    let mut sc = ShardScratch::new();
                    for h in &activities {
                        for k in [1usize, 3, 10] {
                            let cand = strategy.rank_into(sharded.shards(), h, k, &mut sc);
                            let (expect, expect_cand) = unsharded(&strategy, &model, h, k);
                            assert_eq!(
                                sc.out(),
                                &expect[..],
                                "{} {mode:?} n={n} h={h:?} k={k}",
                                strategy.name()
                            );
                            if !matches!(strategy, ShardStrategy::Breadth) {
                                assert_eq!(
                                    cand,
                                    expect_cand,
                                    "{} {mode:?} n={n} h={h:?} k={k}",
                                    strategy.name()
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_activity_and_zero_k_yield_empty() {
        let lib = example_library();
        let sharded = ShardedModel::build(&lib, 2, PartitionMode::HashGoal).unwrap();
        let mut sc = ShardScratch::new();
        for strategy in ShardStrategy::ALL {
            assert_eq!(
                strategy.rank_into(sharded.shards(), &Activity::new(), 5, &mut sc),
                0
            );
            assert!(sc.out().is_empty());
            assert_eq!(
                strategy.rank_into(sharded.shards(), &Activity::from_raw([0]), 0, &mut sc),
                0
            );
            assert!(sc.out().is_empty());
        }
    }

    #[test]
    fn stale_slot_state_cannot_leak_between_requests() {
        // A broad first request followed by a narrow second one: the second
        // merge must not see the first request's per-shard results.
        let lib = example_library();
        let model = GoalModel::build(&lib).unwrap();
        let sharded = ShardedModel::build(&lib, 3, PartitionMode::HashGoal).unwrap();
        let mut sc = ShardScratch::new();
        for strategy in ShardStrategy::ALL {
            let broad = Activity::from_raw([0, 1, 2, 3]);
            strategy.rank_into(sharded.shards(), &broad, 10, &mut sc);
            let narrow = Activity::from_raw([3]);
            strategy.rank_into(sharded.shards(), &narrow, 10, &mut sc);
            let (expect, _) = unsharded(&strategy, &model, &narrow, 10);
            assert_eq!(sc.out(), &expect[..], "{}", strategy.name());
        }
    }

    #[test]
    fn unknown_actions_are_ignored_like_unsharded() {
        let lib = example_library();
        let model = GoalModel::build(&lib).unwrap();
        let sharded = ShardedModel::build(&lib, 2, PartitionMode::BalancedMass).unwrap();
        let mut sc = ShardScratch::new();
        let h = Activity::from_raw([0, 999]);
        for strategy in ShardStrategy::ALL {
            strategy.rank_into(sharded.shards(), &h, 10, &mut sc);
            let (expect, _) = unsharded(&strategy, &model, &h, 10);
            assert_eq!(sc.out(), &expect[..], "{}", strategy.name());
        }
    }
}
