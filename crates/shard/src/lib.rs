//! # goalrec-shard
//!
//! Sharded scatter-gather serving for the association-based goal model: a
//! [`GoalLibrary`](goalrec_core::GoalLibrary) is split into `N` goal-
//! partitioned sub-models ([`ShardedModel`]), every recommend request fans
//! out to each shard's independent index ([`ShardStrategy::scatter`]), and
//! the per-shard results are merged into the global top-k
//! ([`ShardStrategy::gather`]) **exactly** — bit-for-bit identical ids,
//! scores and tie-break order to ranking the unsharded model.
//!
//! ## Why goal-partitioned
//!
//! Every strategy in the paper scores through goal implementations, and an
//! implementation belongs to exactly one goal. Assigning each *goal* (with
//! all of its implementations) to one shard therefore partitions the
//! implementation set, which is what makes the merge exact:
//!
//! * the per-activity implementation spaces `IS_s(H)` are disjoint across
//!   shards and union to the global `IS(H)`;
//! * the per-shard goal spaces `GS_s(H)` are disjoint and union to `GS(H)`;
//! * Breadth's per-action scores are integer-valued sums over `IS(H)`, so
//!   summing per-shard partial sums in `u64` is order-independent;
//! * Focus's candidate implementations split disjointly, so a k-way merge
//!   of the per-shard `(score, global impl id)` rankings replays the
//!   unsharded fill loop verbatim;
//! * Best Match's profile and candidate vectors decompose per goal, and
//!   each goal's coordinate is computed entirely on its home shard.
//!
//! Shards keep the **full global id spaces** for actions and goals — only
//! the implementation rows are local — so per-shard results speak global
//! ids with a single monotone `local impl → global impl` map per shard.
//!
//! The *weighted* strategy variants are deliberately not sharded: their
//! scores mix cross-goal `f64` weights whose summation order differs
//! between the sharded and unsharded paths, so the bit-exactness contract
//! cannot hold. A sharded server routes those to an error rather than
//! serving approximately-merged results.
//!
//! ## Module map
//!
//! | Concern | Module |
//! |---|---|
//! | Goal → shard assignment (hash / size-balanced) | [`partition`] |
//! | Per-shard compiled sub-models | [`model`] |
//! | Per-worker scatter + merge arenas | [`scratch`] |
//! | The scatter/gather ranking itself | [`gather`] |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gather;
pub mod model;
pub mod partition;
pub mod scratch;

pub use gather::ShardStrategy;
pub use model::{ShardModel, ShardView, ShardedModel};
pub use partition::PartitionMode;
pub use scratch::ShardScratch;
