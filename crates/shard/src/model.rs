//! Per-shard compiled sub-models.
//!
//! [`ShardedModel::build`] partitions a library's implementations by their
//! goal's shard assignment and compiles each partition into an ordinary
//! [`GoalModel`] via the zero-copy CSR entry point. Every shard keeps the
//! **full global action and goal id spaces** — only implementation ids are
//! renumbered locally — so per-shard set algebra speaks global action ids
//! directly and a single monotone `local → global` implementation map per
//! shard recovers global implementation ids during the merge.
//!
//! [`ShardView`] is the read abstraction the scatter/gather code ranks
//! through. The serving layer implements it for its own per-shard snapshot
//! type so reload can swap one shard's model without touching the others.

use crate::partition::{goal_assignments, PartitionMode};
use goalrec_core::{DeltaSegment, Error, GoalLibrary, GoalModel, LiveRef, Result};

/// One shard's compiled sub-model plus its implementation id map.
#[derive(Debug)]
pub struct ShardModel {
    /// The compiled index over this shard's implementations; `None` when
    /// the partition assigned this shard no implementations at all (an
    /// empty shard serves empty results and is skipped by the merge).
    model: Option<GoalModel>,
    /// Monotone map from local implementation id (row in `model`) to the
    /// implementation's id in the unsharded library. Monotone because the
    /// partitioner walks implementations in global order, which is what
    /// lets per-shard rankings merge under the global id tie-break.
    impl_global: Vec<u32>,
}

impl ShardModel {
    /// Reassembles a shard from an already-compiled sub-model and its
    /// local → global implementation map — the entry point for booting a
    /// shard off a persisted snapshot instead of re-partitioning a
    /// library. Enforces what [`ShardedModel::build`] guarantees by
    /// construction: one map entry per model row, and strictly monotone
    /// global ids (the k-way merge's global tie-break depends on it).
    pub fn from_parts(model: Option<GoalModel>, impl_global: Vec<u32>) -> Result<Self> {
        let rows = model.as_ref().map_or(0, GoalModel::num_impls);
        if impl_global.len() != rows {
            return Err(Error::CorruptModel {
                detail: format!(
                    "shard impl map has {} entries for {rows} model rows",
                    impl_global.len()
                ),
            });
        }
        if let Some(w) = impl_global.windows(2).find(|w| w[0] >= w[1]) {
            return Err(Error::CorruptModel {
                detail: format!(
                    "shard impl map is not strictly monotone ({} then {})",
                    w[0], w[1]
                ),
            });
        }
        Ok(ShardModel { model, impl_global })
    }

    /// The shard's compiled model, or `None` for an empty shard.
    pub fn model(&self) -> Option<&GoalModel> {
        self.model.as_ref()
    }

    /// The local → global implementation id map (one entry per local id).
    pub fn impl_global(&self) -> &[u32] {
        &self.impl_global
    }

    /// Number of implementations on this shard.
    pub fn num_impls(&self) -> usize {
        self.impl_global.len()
    }
}

/// Read access to one shard, as the scatter/gather code sees it.
///
/// Implemented by [`ShardModel`] for direct in-process use and by the
/// serving layer's per-shard snapshot (an `Arc` the reload path swaps
/// atomically), so ranking code is generic over where the shard lives.
pub trait ShardView {
    /// The shard's compiled model, or `None` for an empty shard.
    fn model(&self) -> Option<&GoalModel>;
    /// The monotone local → global implementation id map. When the shard
    /// carries a live delta, the map must also cover the staged local ids
    /// (a dense suffix starting at the delta's `first_impl`), still
    /// monotone — staged implementations get ever-larger global ids.
    fn impl_global(&self) -> &[u32];
    /// The shard's staged live-append delta, if any. Defaults to `None`
    /// so existing snapshot types keep compiling unchanged.
    fn delta(&self) -> Option<&DeltaSegment> {
        None
    }
    /// The base ⊕ delta view this shard serves — what the scatter/gather
    /// phases rank through.
    fn live(&self) -> LiveRef<'_> {
        LiveRef::from_parts(self.model(), self.delta())
    }
}

impl ShardView for ShardModel {
    fn model(&self) -> Option<&GoalModel> {
        self.model()
    }

    fn impl_global(&self) -> &[u32] {
        self.impl_global()
    }
}

impl<T: ShardView + ?Sized> ShardView for &T {
    fn model(&self) -> Option<&GoalModel> {
        (**self).model()
    }

    fn impl_global(&self) -> &[u32] {
        (**self).impl_global()
    }

    fn delta(&self) -> Option<&DeltaSegment> {
        (**self).delta()
    }
}

impl<T: ShardView + ?Sized> ShardView for std::sync::Arc<T> {
    fn model(&self) -> Option<&GoalModel> {
        (**self).model()
    }

    fn impl_global(&self) -> &[u32] {
        (**self).impl_global()
    }

    fn delta(&self) -> Option<&DeltaSegment> {
        (**self).delta()
    }
}

/// A goal-partitioned library compiled into per-shard sub-models.
#[derive(Debug)]
pub struct ShardedModel {
    shards: Vec<ShardModel>,
    mode: PartitionMode,
    assignments: Vec<usize>,
}

impl ShardedModel {
    /// Partitions `library` into `num_shards` (clamped to ≥ 1) sub-models
    /// under the given placement policy and compiles each non-empty
    /// partition. Fails only if a sub-model fails validation, which would
    /// indicate a partitioner bug rather than bad input.
    pub fn build(library: &GoalLibrary, num_shards: usize, mode: PartitionMode) -> Result<Self> {
        let n = num_shards.max(1);
        let assignments = goal_assignments(library, n, mode);

        // One CSR accumulator per shard; walking implementations in global
        // order keeps every per-shard impl_global map monotone.
        let mut parts: Vec<ShardPart> = (0..n).map(|_| ShardPart::default()).collect();
        for (i, imp) in library.implementations().iter().enumerate() {
            // Ids were handed out by a u32 interner, so they always fit.
            let global = u32::try_from(i).unwrap_or(u32::MAX);
            parts[assignments[imp.goal.index()]].push(global, imp.goal.raw(), imp.action_raw());
        }

        let mut shards = Vec::with_capacity(n);
        for part in parts {
            shards.push(part.compile(library.num_actions(), library.num_goals())?);
        }
        Ok(Self {
            shards,
            mode,
            assignments,
        })
    }

    /// The per-shard sub-models, indexed by shard id.
    pub fn shards(&self) -> &[ShardModel] {
        &self.shards
    }

    /// Number of shards (≥ 1).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The placement policy this model was built with.
    pub fn mode(&self) -> PartitionMode {
        self.mode
    }

    /// The goal → shard assignment used (`assignments[g]` = shard of `g`).
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Consumes the model, yielding the per-shard sub-models — what the
    /// serving layer wraps into individually swappable snapshots.
    pub fn into_shards(self) -> Vec<ShardModel> {
        self.shards
    }
}

/// Flat CSR accumulator for one shard's implementations.
#[derive(Default)]
struct ShardPart {
    impl_goal: Vec<u32>,
    offsets: Vec<u32>,
    data: Vec<u32>,
    impl_global: Vec<u32>,
}

impl ShardPart {
    fn push(&mut self, global_impl: u32, goal: u32, actions: &[u32]) {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.impl_goal.push(goal);
        self.data.extend_from_slice(actions);
        // Postings counts come from a u32-indexed library, so they fit.
        self.offsets
            .push(u32::try_from(self.data.len()).unwrap_or(u32::MAX));
        self.impl_global.push(global_impl);
    }

    fn compile(self, num_actions: usize, num_goals: usize) -> Result<ShardModel> {
        let model = if self.impl_goal.is_empty() {
            None
        } else {
            Some(GoalModel::from_csr_parts(
                num_actions,
                num_goals,
                self.impl_goal,
                self.offsets,
                self.data,
            )?)
        };
        Ok(ShardModel {
            model,
            impl_global: self.impl_global,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use goalrec_core::ids::ImplId;
    use goalrec_core::LibraryBuilder;

    /// Example 3.2 / Figure 1 library: a1..a6 → 0..5, goals g1,g2,g3,g5 →
    /// 0..3, impls p1..p5 → 0..4.
    fn example_library() -> GoalLibrary {
        let mut b = LibraryBuilder::new();
        b.add_impl("g1", ["a1", "a2"]).unwrap();
        b.add_impl("g1", ["a1", "a3"]).unwrap();
        b.add_impl("g2", ["a1", "a4", "a5"]).unwrap();
        b.add_impl("g3", ["a4", "a6"]).unwrap();
        b.add_impl("g5", ["a1", "a2", "a6"]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn shards_partition_the_implementations() {
        let lib = example_library();
        for mode in [PartitionMode::HashGoal, PartitionMode::BalancedMass] {
            for n in [1usize, 2, 3, 7] {
                let sharded = ShardedModel::build(&lib, n, mode).unwrap();
                assert_eq!(sharded.num_shards(), n);
                let mut seen: Vec<u32> = sharded
                    .shards()
                    .iter()
                    .flat_map(|s| s.impl_global().iter().copied())
                    .collect();
                seen.sort_unstable();
                assert_eq!(seen, vec![0, 1, 2, 3, 4], "{mode:?} n={n}");
            }
        }
    }

    #[test]
    fn impl_global_maps_are_monotone() {
        let lib = example_library();
        let sharded = ShardedModel::build(&lib, 3, PartitionMode::HashGoal).unwrap();
        for shard in sharded.shards() {
            assert!(shard.impl_global().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn shard_rows_match_the_global_library() {
        let lib = example_library();
        let global = GoalModel::build(&lib).unwrap();
        let sharded = ShardedModel::build(&lib, 2, PartitionMode::BalancedMass).unwrap();
        for shard in sharded.shards() {
            let Some(model) = shard.model() else { continue };
            // Full global id spaces on every shard.
            assert_eq!(model.num_actions(), global.num_actions());
            assert_eq!(model.num_goals(), global.num_goals());
            for (local, &g) in shard.impl_global().iter().enumerate() {
                let local = ImplId::new(u32::try_from(local).unwrap());
                let global_id = ImplId::new(g);
                assert_eq!(model.impl_actions(local), global.impl_actions(global_id));
                assert_eq!(model.impl_goal(local), global.impl_goal(global_id));
            }
        }
    }

    #[test]
    fn goals_stay_whole() {
        // Every implementation of one goal must land on the same shard.
        let lib = example_library();
        let sharded = ShardedModel::build(&lib, 4, PartitionMode::HashGoal).unwrap();
        let a = sharded.assignments();
        for (s, shard) in sharded.shards().iter().enumerate() {
            let Some(model) = shard.model() else { continue };
            for local in 0..shard.num_impls() {
                let g = model.impl_goal(ImplId::new(u32::try_from(local).unwrap()));
                assert_eq!(a[g.index()], s);
            }
        }
    }

    #[test]
    fn empty_shards_have_no_model() {
        // 7 shards for 4 goals: at least 3 shards must be empty.
        let lib = example_library();
        let sharded = ShardedModel::build(&lib, 7, PartitionMode::BalancedMass).unwrap();
        let empty = sharded
            .shards()
            .iter()
            .filter(|s| s.model().is_none())
            .count();
        assert!(empty >= 3);
        for shard in sharded.shards() {
            assert_eq!(shard.model().is_none(), shard.num_impls() == 0);
        }
    }
}
