//! Goal → shard assignment.
//!
//! The unit of placement is the *goal*: all implementations of one goal
//! land on the same shard, which keeps the per-shard implementation sets
//! disjoint and is what makes the scatter-gather merge exact (see the
//! [crate docs](crate)). Two deterministic policies are offered:
//!
//! * [`PartitionMode::HashGoal`] — a stateless integer hash of the goal
//!   id. Placement is independent of library content, so a goal stays on
//!   the same shard across reloads that don't change the goal dictionary.
//! * [`PartitionMode::BalancedMass`] — greedy longest-processing-time
//!   placement by *posting-list mass* (the total number of action postings
//!   across the goal's implementations). Shards end up with near-equal
//!   index volume even when goal sizes are heavily skewed, at the cost of
//!   placement depending on the library contents.

use goalrec_core::GoalLibrary;

/// How goals are assigned to shards. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionMode {
    /// `shard(g) = hash(g) mod N`: stateless, reload-stable placement.
    HashGoal,
    /// Greedy LPT by posting-list mass: heaviest goals first, each to the
    /// currently lightest shard (ties: lowest shard index). Deterministic
    /// for a given library.
    BalancedMass,
}

impl PartitionMode {
    /// Parses the CLI spelling (`hash` / `balanced`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "hash" => Some(Self::HashGoal),
            "balanced" => Some(Self::BalancedMass),
            _ => None,
        }
    }

    /// The CLI spelling of the mode.
    pub fn name(self) -> &'static str {
        match self {
            Self::HashGoal => "hash",
            Self::BalancedMass => "balanced",
        }
    }
}

/// SplitMix64 finalizer over the goal id: cheap, stateless, and well
/// dispersed even though consecutive goal ids differ in few bits.
fn mix(g: u64) -> u64 {
    let mut x = g.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Computes the goal → shard assignment: `assignment[g]` is the shard
/// index of goal `g`. `num_shards` is clamped to at least 1; every entry
/// is `< num_shards`. Deterministic for a given `(library, num_shards,
/// mode)` triple.
pub fn goal_assignments(
    library: &GoalLibrary,
    num_shards: usize,
    mode: PartitionMode,
) -> Vec<usize> {
    let shards = num_shards.max(1);
    let num_goals = library.num_goals();
    match mode {
        PartitionMode::HashGoal => (0..num_goals).map(|g| hash_shard(g, shards)).collect(),
        PartitionMode::BalancedMass => {
            // Posting-list mass per goal: Σ |A_p| over the goal's impls.
            let mut mass = vec![0u64; num_goals];
            for imp in library.implementations() {
                mass[imp.goal.index()] += imp.len() as u64;
            }
            // LPT: heaviest goal first (ties: lowest goal id), each onto
            // the lightest shard so far (ties: lowest shard index).
            let mut order: Vec<usize> = (0..num_goals).collect();
            order.sort_unstable_by(|&a, &b| mass[b].cmp(&mass[a]).then_with(|| a.cmp(&b)));
            let mut load = vec![0u64; shards];
            let mut assignment = vec![0usize; num_goals];
            for g in order {
                let mut best = 0usize;
                for (s, &l) in load.iter().enumerate().skip(1) {
                    if l < load[best] {
                        best = s;
                    }
                }
                assignment[g] = best;
                load[best] += mass[g];
            }
            assignment
        }
    }
}

/// `hash(g) mod shards`, with the modulo result safely narrowed.
fn hash_shard(g: usize, shards: usize) -> usize {
    let h = mix(g as u64) % (shards as u64);
    // h < shards ≤ usize::MAX, so the narrowing can never actually fail.
    usize::try_from(h).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use goalrec_core::LibraryBuilder;

    fn skewed_library() -> GoalLibrary {
        // Goal g0 is huge (8 impls × 4 actions), the rest are small.
        let mut b = LibraryBuilder::new();
        for v in 0..8u32 {
            let acts: Vec<String> = (0..4u32).map(|i| format!("a{}", v * 4 + i)).collect();
            b.add_impl("g0", acts.iter().map(String::as_str)).unwrap();
        }
        for g in 1..9u32 {
            b.add_impl(&format!("g{g}"), [format!("a{}", g % 5)])
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn mode_parse_round_trips() {
        for mode in [PartitionMode::HashGoal, PartitionMode::BalancedMass] {
            assert_eq!(PartitionMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(PartitionMode::parse("nope"), None);
    }

    #[test]
    fn assignments_cover_every_goal_and_stay_in_range() {
        let lib = skewed_library();
        for mode in [PartitionMode::HashGoal, PartitionMode::BalancedMass] {
            for n in [1usize, 2, 3, 7] {
                let a = goal_assignments(&lib, n, mode);
                assert_eq!(a.len(), lib.num_goals());
                assert!(a.iter().all(|&s| s < n), "{mode:?} n={n}");
            }
        }
    }

    #[test]
    fn hash_assignment_is_stable_and_library_independent() {
        let lib = skewed_library();
        let a1 = goal_assignments(&lib, 4, PartitionMode::HashGoal);
        let a2 = goal_assignments(&lib, 4, PartitionMode::HashGoal);
        assert_eq!(a1, a2);
        // Hash placement only looks at the goal id, not the content.
        let mut b = LibraryBuilder::new();
        for g in 0..9u32 {
            b.add_impl(&format!("g{g}"), ["a0"]).unwrap();
        }
        let other = b.build().unwrap();
        assert_eq!(a1, goal_assignments(&other, 4, PartitionMode::HashGoal));
    }

    #[test]
    fn single_shard_gets_everything() {
        let lib = skewed_library();
        for mode in [PartitionMode::HashGoal, PartitionMode::BalancedMass] {
            assert!(goal_assignments(&lib, 1, mode).iter().all(|&s| s == 0));
            // 0 shards is clamped to 1 rather than dividing by zero.
            assert!(goal_assignments(&lib, 0, mode).iter().all(|&s| s == 0));
        }
    }

    #[test]
    fn balanced_mass_splits_the_skew() {
        let lib = skewed_library();
        let a = goal_assignments(&lib, 2, PartitionMode::BalancedMass);
        // g0 carries mass 32; all others together carry 8. LPT must put g0
        // alone on one shard and every light goal on the other.
        let g0 = a[0];
        for (g, &s) in a.iter().enumerate().skip(1) {
            assert_ne!(s, g0, "goal g{g} landed on the heavy shard");
        }
    }

    #[test]
    fn balanced_mass_is_deterministic() {
        let lib = skewed_library();
        assert_eq!(
            goal_assignments(&lib, 3, PartitionMode::BalancedMass),
            goal_assignments(&lib, 3, PartitionMode::BalancedMass)
        );
    }
}
