//! Per-worker scatter + merge arenas.
//!
//! Mirrors the design of [`goalrec_core::Scratch`]: one [`ShardScratch`]
//! per worker thread owns every buffer both phases of a scatter-gather
//! rank need — one [`ShardSlot`] per shard for the scatter half, plus the
//! merge-side boards, cursors and accumulators — so steady-state requests
//! touch the heap zero times (`tests/alloc_counting.rs` proves it with a
//! counting allocator). Buffers grow to their high-water mark on the first
//! requests and stay allocated.

use goalrec_core::ids::ActionId;
use goalrec_core::profile::GoalVector;
use goalrec_core::topk::{Scored, TopK};
use goalrec_core::Scratch;

/// Scatter-phase working memory for one shard.
///
/// Breadth and Focus scatter straight into the slot's core [`Scratch`]
/// (full per-shard ranking and per-shard implementation ranking
/// respectively); Best Match keeps its per-shard goal space, profile and
/// candidate pool in the slot's own buffers because the gather phase needs
/// all shards' spaces alive at once for the k-way merge.
#[derive(Default)]
pub struct ShardSlot {
    /// Core arena driving the shard-local strategy code.
    pub(crate) scratch: Scratch,
    /// Best Match: raw (goal, +1) contribution pairs.
    pub(crate) pairs: Vec<u32>,
    /// Best Match: the shard's goal space `GS_s(H)` (sorted).
    pub(crate) space: Vec<u32>,
    /// Best Match: the shard's partial user profile over `space`.
    pub(crate) profile: GoalVector,
    /// Best Match: the shard's implementation space `IS_s(H)`.
    pub(crate) impl_space: Vec<u32>,
    /// Best Match: the shard's candidate pool `AS_s(H) − H` (sorted).
    pub(crate) cand: Vec<u32>,
}

impl ShardSlot {
    /// Clears every per-request result so a shard that is skipped this
    /// request (empty, or failed over) can never leak stale data into the
    /// merge. Keeps all backing allocations.
    pub(crate) fn clear(&mut self) {
        self.scratch.clear_results();
        self.pairs.clear();
        self.space.clear();
        self.profile.reset(&[]);
        self.impl_space.clear();
        self.cand.clear();
    }
}

/// Epoch-stamped dense `u64` scoreboard for the Breadth merge, same trick
/// as the core arena's board: bumping one epoch integer invalidates every
/// slot, so per-request cost is proportional to the touched actions, not
/// `O(|𝒜|)`.
#[derive(Default)]
pub(crate) struct ScoreBoard {
    epoch: u32,
    slots: Vec<(u64, u32)>,
    touched: Vec<ActionId>,
}

impl ScoreBoard {
    /// Starts a new merge epoch sized for `num_actions`.
    pub(crate) fn begin(&mut self, num_actions: usize) {
        if self.slots.len() < num_actions {
            self.slots.resize(num_actions, (0, 0));
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wraparound: stamps from 2³² merges ago could alias. Reset.
            for slot in &mut self.slots {
                slot.1 = 0;
            }
            self.epoch = 1;
        }
        self.touched.clear();
    }

    /// Adds `delta` to action `a`'s summed score.
    pub(crate) fn add(&mut self, a: ActionId, delta: u64) {
        let slot = &mut self.slots[a.index()];
        if slot.1 == self.epoch {
            slot.0 += delta;
        } else {
            *slot = (delta, self.epoch);
            self.touched.push(a);
        }
    }

    /// Action `a`'s summed score this epoch (0 if untouched).
    pub(crate) fn get(&self, a: ActionId) -> u64 {
        let slot = self.slots[a.index()];
        if slot.1 == self.epoch {
            slot.0
        } else {
            0
        }
    }

    /// Actions touched this epoch, in first-touch order.
    pub(crate) fn touched(&self) -> &[ActionId] {
        &self.touched
    }
}

/// Reusable per-worker working memory for one scatter-gather request.
///
/// Grows to fit the highest shard count it has served (via
/// [`ShardScratch::ensure_shards`], called by the scatter/gather entry
/// points) and is then allocation-free at steady state.
#[derive(Default)]
pub struct ShardScratch {
    /// One scatter slot per shard.
    pub(crate) slots: Vec<ShardSlot>,
    /// K-way merge cursors, one per shard.
    pub(crate) heads: Vec<usize>,
    /// Breadth merge: summed integer scores.
    pub(crate) board: ScoreBoard,
    /// Best Match merge: the merged global goal space `GS(H)`.
    pub(crate) gspace: Vec<u32>,
    /// Best Match merge: profile counts aligned with `gspace`.
    pub(crate) gprofile: Vec<f64>,
    /// Best Match merge: deduplicated global candidate pool.
    pub(crate) candidates: Vec<u32>,
    /// Best Match merge: the per-candidate goal vector.
    pub(crate) vec: GoalVector,
    /// Focus merge: the running excluded-action set (Algorithm 1's `R`).
    pub(crate) seen: Vec<u32>,
    /// Focus merge: per-implementation remaining-action buffer.
    pub(crate) remaining: Vec<u32>,
    /// Bounded global top-k accumulator.
    pub(crate) topk: TopK,
    /// The merged ranking of the last `gather` call.
    pub(crate) out: Vec<Scored>,
}

impl ShardScratch {
    /// A fresh arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grows the per-shard slot and cursor tables to at least `n` entries.
    /// Called by the scatter/gather entry points; only the first request
    /// at a new shard count allocates.
    pub fn ensure_shards(&mut self, n: usize) {
        while self.slots.len() < n {
            self.slots.push(ShardSlot::default());
        }
        if self.heads.len() < n {
            self.heads.resize(n, 0);
        }
    }

    /// The merged ranking produced by the last
    /// [`crate::ShardStrategy::gather`] call on this arena.
    pub fn out(&self) -> &[Scored] {
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoreboard_epochs_reset_without_rezeroing() {
        let mut b = ScoreBoard::default();
        b.begin(8);
        b.add(ActionId::new(3), 2);
        b.add(ActionId::new(3), 1);
        b.add(ActionId::new(5), 7);
        assert_eq!(b.get(ActionId::new(3)), 3);
        assert_eq!(b.get(ActionId::new(5)), 7);
        assert_eq!(b.get(ActionId::new(0)), 0);
        assert_eq!(b.touched(), &[ActionId::new(3), ActionId::new(5)]);
        b.begin(8);
        assert_eq!(b.get(ActionId::new(3)), 0);
        assert!(b.touched().is_empty());
    }

    #[test]
    fn scoreboard_wraparound_resets_stamps() {
        let mut b = ScoreBoard::default();
        b.begin(2);
        b.add(ActionId::new(0), 9);
        b.epoch = u32::MAX;
        b.begin(2);
        assert_eq!(b.epoch, 1);
        assert_eq!(b.get(ActionId::new(0)), 0);
    }

    #[test]
    fn ensure_shards_grows_monotonically() {
        let mut s = ShardScratch::new();
        s.ensure_shards(3);
        assert_eq!(s.slots.len(), 3);
        assert_eq!(s.heads.len(), 3);
        s.ensure_shards(1); // never shrinks
        assert_eq!(s.slots.len(), 3);
        s.ensure_shards(5);
        assert_eq!(s.slots.len(), 5);
    }

    #[test]
    fn slot_clear_wipes_results() {
        let mut slot = ShardSlot::default();
        slot.pairs.push(1);
        slot.space.push(2);
        slot.impl_space.push(3);
        slot.cand.push(4);
        slot.profile.reset(&[1, 2]);
        slot.clear();
        assert!(slot.pairs.is_empty());
        assert!(slot.space.is_empty());
        assert!(slot.impl_space.is_empty());
        assert!(slot.cand.is_empty());
        assert_eq!(slot.profile.dim(), 0);
    }
}
