//! Counting-allocator proof that the scatter-gather recommend path is
//! allocation-free at steady state.
//!
//! Same shape as the core crate's `alloc_counting` test: a global
//! allocator wrapper counts every `alloc`/`realloc`; after two warm-up
//! requests per (strategy, activity) pair have grown the
//! [`ShardScratch`] arena to its high-water mark, a steady-state
//! scatter + gather across every shard must perform exactly zero heap
//! allocations.
//!
//! Deliberately a single `#[test]`: the counter is process-global, so a
//! second concurrent test would pollute the measurement.

use goalrec_core::{Activity, LibraryBuilder};
use goalrec_shard::{PartitionMode, ShardScratch, ShardStrategy, ShardedModel};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_scatter_gather_performs_zero_heap_allocations() {
    // Dozens of goals with overlapping action sets, so every shard gets
    // real work and sloppy per-request allocation would show up.
    let mut b = LibraryBuilder::new();
    for g in 0..24u32 {
        for v in 0..3u32 {
            let actions: Vec<String> = (0..4u32)
                .map(|i| format!("a{}", (g * 7 + v * 13 + i * 5) % 40))
                .collect();
            let refs: Vec<&str> = actions.iter().map(String::as_str).collect();
            b.add_impl(&format!("g{g}"), refs).unwrap();
        }
    }
    let lib = b.build().unwrap();
    let sharded = ShardedModel::build(&lib, 3, PartitionMode::BalancedMass).unwrap();

    let activities = [
        Activity::from_raw([0]),
        Activity::from_raw([1, 5, 9]),
        Activity::from_raw([2, 3, 17, 30]),
    ];
    let mut scratch = ShardScratch::new();

    // Warm-up: two rounds per (strategy, activity) pair grow every arena
    // buffer — per-shard slots included — to steady-state capacity.
    for _ in 0..2 {
        for strategy in ShardStrategy::ALL {
            for h in &activities {
                strategy.rank_into(sharded.shards(), h, 10, &mut scratch);
            }
        }
    }

    for strategy in ShardStrategy::ALL {
        for h in &activities {
            let before = ALLOCATIONS.load(Ordering::Relaxed);
            let n = strategy.rank_into(sharded.shards(), h, 10, &mut scratch);
            let delta = ALLOCATIONS.load(Ordering::Relaxed) - before;
            assert_eq!(
                delta,
                0,
                "sharded {} allocated {delta} time(s) on a steady-state \
                 scatter-gather (H={:?})",
                strategy.name(),
                h
            );
            assert!(
                n > 0,
                "sharded {} found no candidates — vacuous measurement",
                strategy.name()
            );
            assert!(!scratch.out().is_empty());
        }
    }
}
