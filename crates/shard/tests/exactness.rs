//! Property proof of the scatter-gather exactness contract.
//!
//! For random libraries, random activities and every supported strategy,
//! the sharded ranking must be **bit-for-bit identical** to the unsharded
//! `rank_into` — same action ids, same `f64` score bits, same tie-break
//! order — at every shard count and under both partitioning policies.
//! Candidate counts must also agree for Focus and Best Match (Breadth's
//! merged pool deliberately excludes already-performed actions, which the
//! unsharded accumulator counts; the crate docs call this out).

use goalrec_core::ids::{ActionId, GoalId};
use goalrec_core::scratch::Scratch;
use goalrec_core::strategies::{BestMatch, Breadth, Focus, Strategy};
use goalrec_core::topk::Scored;
use goalrec_core::{Activity, GoalLibrary, GoalModel};
use goalrec_shard::{PartitionMode, ShardScratch, ShardStrategy, ShardedModel};
use proptest::prelude::*;

/// Runs the unsharded reference ranking into a fresh arena.
fn unsharded(
    strategy: &ShardStrategy,
    model: &GoalModel,
    h: &Activity,
    k: usize,
) -> (Vec<Scored>, usize) {
    let mut scratch = Scratch::default();
    let n = match strategy {
        ShardStrategy::Breadth => Breadth.rank_into(model, h, k, &mut scratch),
        ShardStrategy::Focus(v) => Focus::new(*v).rank_into(model, h, k, &mut scratch),
        ShardStrategy::BestMatch(m) => BestMatch::new(*m).rank_into(model, h, k, &mut scratch),
    };
    (scratch.out().to_vec(), n)
}

/// Asserts bit-identical rankings: ids must match and scores must agree
/// down to their `f64` bit patterns — the strongest possible reading of
/// the exactness contract.
fn assert_identical(got: &[Scored], expect: &[Scored], ctx: &str) {
    assert_eq!(got.len(), expect.len(), "length mismatch {ctx}");
    for (i, (g, e)) in got.iter().zip(expect.iter()).enumerate() {
        assert_eq!(g.action, e.action, "action #{i} differs {ctx}");
        assert_eq!(
            g.score.to_bits(),
            e.score.to_bits(),
            "score bits #{i} differ {ctx}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: every strategy, every shard count, both
    /// partition modes, random libraries and activities.
    #[test]
    fn sharded_topk_is_bit_identical_to_unsharded(
        impls in proptest::collection::vec(
            (0u32..8, proptest::collection::btree_set(0u32..15, 1..6)),
            1..25
        ),
        h in proptest::collection::btree_set(0u32..15, 0..8),
        k in 1usize..12
    ) {
        let lib = GoalLibrary::from_id_implementations(
            15,
            8,
            impls
                .into_iter()
                .map(|(g, acts)| {
                    (GoalId::new(g), acts.into_iter().map(ActionId::new).collect())
                })
                .collect(),
        )
        .unwrap();
        let model = GoalModel::build(&lib).unwrap();
        let h = Activity::from_raw(h);
        let mut sc = ShardScratch::new();

        for strategy in ShardStrategy::ALL {
            let (expect, expect_cand) = unsharded(&strategy, &model, &h, k);
            for mode in [PartitionMode::HashGoal, PartitionMode::BalancedMass] {
                for n in [1usize, 2, 3, 7] {
                    let sharded = ShardedModel::build(&lib, n, mode).unwrap();
                    let cand = strategy.rank_into(sharded.shards(), &h, k, &mut sc);
                    let ctx = format!(
                        "[{} {mode:?} n={n} H={h:?} k={k}]",
                        strategy.name()
                    );
                    assert_identical(sc.out(), &expect, &ctx);
                    if !matches!(strategy, ShardStrategy::Breadth) {
                        prop_assert_eq!(cand, expect_cand, "candidate count {}", ctx);
                    }
                }
            }
        }
    }

    /// Reusing one arena across wildly different requests never changes
    /// results (no state leaks between requests or across strategies).
    #[test]
    fn arena_reuse_is_stateless(
        impls in proptest::collection::vec(
            (0u32..6, proptest::collection::btree_set(0u32..12, 1..5)),
            1..15
        ),
        h1 in proptest::collection::btree_set(0u32..12, 1..6),
        h2 in proptest::collection::btree_set(0u32..12, 0..3),
    ) {
        let lib = GoalLibrary::from_id_implementations(
            12,
            6,
            impls
                .into_iter()
                .map(|(g, acts)| {
                    (GoalId::new(g), acts.into_iter().map(ActionId::new).collect())
                })
                .collect(),
        )
        .unwrap();
        let model = GoalModel::build(&lib).unwrap();
        let sharded = ShardedModel::build(&lib, 3, PartitionMode::HashGoal).unwrap();
        let (h1, h2) = (Activity::from_raw(h1), Activity::from_raw(h2));

        let mut shared = ShardScratch::new();
        for strategy in ShardStrategy::ALL {
            // Pollute the shared arena with the first request…
            strategy.rank_into(sharded.shards(), &h1, 10, &mut shared);
            // …then the second request must match a pristine arena's answer.
            let mut fresh = ShardScratch::new();
            strategy.rank_into(sharded.shards(), &h2, 4, &mut fresh);
            strategy.rank_into(sharded.shards(), &h2, 4, &mut shared);
            let (expect, _) = unsharded(&strategy, &model, &h2, 4);
            let ctx = format!("[{} H={h2:?}]", strategy.name());
            assert_identical(shared.out(), fresh.out(), &ctx);
            assert_identical(shared.out(), &expect, &ctx);
        }
    }
}
