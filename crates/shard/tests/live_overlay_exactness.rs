//! Property proof that the sharded **base ⊕ delta** overlay is exact.
//!
//! Random base libraries plus random append sequences, partitioned over
//! 1–3 shards: ranking through per-shard live views (compiled sub-model
//! overlaid with that shard's staged delta) must be **bit-for-bit
//! identical** — ids, `f64` score bits, tie-break order — to a full
//! `GoalModel::build` of the merged library, for every supported strategy
//! and both placement policies. This is the sharded half of the live
//! mutation exactness contract; `goalrec-core`'s `live_overlay` test
//! proves the unsharded half.
//!
//! Append routing mirrors the serving plane: an append for a base goal
//! lands on that goal's home shard (goal-wholeness is what makes the
//! merge exact), and an append for a brand-new goal falls back to the
//! deterministic `g % n` placement.

use goalrec_core::ids::{ActionId, GoalId};
use goalrec_core::scratch::Scratch;
use goalrec_core::strategies::{BestMatch, Breadth, Focus, Strategy};
use goalrec_core::topk::Scored;
use goalrec_core::{Activity, DeltaSegment, GoalLibrary, GoalModel};
use goalrec_shard::{
    PartitionMode, ShardModel, ShardScratch, ShardStrategy, ShardView, ShardedModel,
};
use proptest::prelude::*;

/// A serving-plane-like shard snapshot: compiled base sub-model, staged
/// delta, and the merged (base ⧺ staged) local → global id map.
struct LiveShard {
    base: ShardModel,
    delta: DeltaSegment,
    impl_global: Vec<u32>,
}

impl ShardView for LiveShard {
    fn model(&self) -> Option<&GoalModel> {
        self.base.model()
    }

    fn impl_global(&self) -> &[u32] {
        &self.impl_global
    }

    fn delta(&self) -> Option<&DeltaSegment> {
        (!self.delta.is_empty()).then_some(&self.delta)
    }
}

/// Partitions `base`, then routes every append to its owning shard's
/// delta, extending that shard's id map with the global id the merged
/// rebuild will assign (base total + append index) — monotone because
/// appends arrive in global order.
fn build_live_shards(
    base: &GoalLibrary,
    appends: &[(u32, Vec<u32>)],
    n: usize,
    mode: PartitionMode,
) -> Vec<LiveShard> {
    let sharded = ShardedModel::build(base, n, mode).unwrap();
    let assignments = sharded.assignments().to_vec();
    let base_total = u32::try_from(base.len()).unwrap();
    let mut shards: Vec<LiveShard> = sharded
        .into_shards()
        .into_iter()
        .map(|s| {
            let first = u32::try_from(s.num_impls()).unwrap();
            let impl_global = s.impl_global().to_vec();
            LiveShard {
                base: s,
                delta: DeltaSegment::new(first, base.num_actions(), base.num_goals()),
                impl_global,
            }
        })
        .collect();
    for (i, (g, actions)) in appends.iter().enumerate() {
        let owner = match assignments.get(*g as usize) {
            Some(&s) => s,
            None => (*g as usize) % n,
        };
        shards[owner]
            .delta
            .append(
                GoalId::new(*g),
                actions.iter().copied().map(ActionId::new).collect(),
            )
            .unwrap();
        shards[owner]
            .impl_global
            .push(base_total + u32::try_from(i).unwrap());
    }
    shards
}

/// The merged library the compactor would build: base implementations in
/// order, then the appends in acceptance order.
fn merged_library(base: &GoalLibrary, appends: &[(u32, Vec<u32>)]) -> GoalLibrary {
    let mut num_actions = u32::try_from(base.num_actions()).unwrap();
    let mut num_goals = u32::try_from(base.num_goals()).unwrap();
    let mut impls: Vec<(GoalId, Vec<ActionId>)> = base
        .implementations()
        .iter()
        .map(|imp| (imp.goal, imp.actions.clone()))
        .collect();
    for (g, actions) in appends {
        num_goals = num_goals.max(*g + 1);
        for &a in actions {
            num_actions = num_actions.max(a + 1);
        }
        impls.push((
            GoalId::new(*g),
            actions.iter().copied().map(ActionId::new).collect(),
        ));
    }
    GoalLibrary::from_id_implementations(num_actions, num_goals, impls).unwrap()
}

/// Runs the unsharded reference ranking on the merged model.
fn unsharded(
    strategy: &ShardStrategy,
    model: &GoalModel,
    h: &Activity,
    k: usize,
) -> (Vec<Scored>, usize) {
    let mut scratch = Scratch::default();
    let n = match strategy {
        ShardStrategy::Breadth => Breadth.rank_into(model, h, k, &mut scratch),
        ShardStrategy::Focus(v) => Focus::new(*v).rank_into(model, h, k, &mut scratch),
        ShardStrategy::BestMatch(m) => BestMatch::new(*m).rank_into(model, h, k, &mut scratch),
    };
    (scratch.out().to_vec(), n)
}

fn assert_identical(got: &[Scored], expect: &[Scored], ctx: &str) {
    assert_eq!(got.len(), expect.len(), "length mismatch {ctx}");
    for (i, (g, e)) in got.iter().zip(expect.iter()).enumerate() {
        assert_eq!(g.action, e.action, "action #{i} differs {ctx}");
        assert_eq!(
            g.score.to_bits(),
            e.score.to_bits(),
            "score bits #{i} differ {ctx}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random base + random appends (including brand-new goals and
    /// actions), N ∈ {1, 2, 3}: base ⊕ delta rankings are bit-identical
    /// to the merged rebuild for all six strategies.
    #[test]
    fn live_sharded_topk_is_bit_identical_to_merged_rebuild(
        base_impls in proptest::collection::vec(
            (0u32..6, proptest::collection::btree_set(0u32..12, 1..5)),
            1..18
        ),
        appends_set in proptest::collection::vec(
            (0u32..9, proptest::collection::btree_set(0u32..16, 1..5)),
            0..10
        ),
        h in proptest::collection::btree_set(0u32..16, 0..8),
        k in 1usize..10
    ) {
        let appends: Vec<(u32, Vec<u32>)> = appends_set
            .into_iter()
            .map(|(g, acts)| (g, acts.into_iter().collect()))
            .collect();
        let base = GoalLibrary::from_id_implementations(
            12,
            6,
            base_impls
                .into_iter()
                .map(|(g, acts)| {
                    (GoalId::new(g), acts.into_iter().map(ActionId::new).collect())
                })
                .collect(),
        )
        .unwrap();
        let merged = merged_library(&base, &appends);
        let model = GoalModel::build(&merged).unwrap();
        let h = Activity::from_raw(h);
        let mut sc = ShardScratch::new();

        for strategy in ShardStrategy::ALL {
            let (expect, expect_cand) = unsharded(&strategy, &model, &h, k);
            for mode in [PartitionMode::HashGoal, PartitionMode::BalancedMass] {
                for n in [1usize, 2, 3] {
                    let shards = build_live_shards(&base, &appends, n, mode);
                    let cand = strategy.rank_into(&shards, &h, k, &mut sc);
                    let ctx = format!(
                        "{} {mode:?} n={n} h={h:?} k={k} appends={}",
                        strategy.name(),
                        appends.len()
                    );
                    assert_identical(sc.out(), &expect, &ctx);
                    if !matches!(strategy, ShardStrategy::Breadth) {
                        prop_assert_eq!(cand, expect_cand, "{}", ctx);
                    }
                }
            }
        }
    }
}

/// An append that lands on a shard with no compiled base at all (more
/// shards than base goals) must still serve — the delta-only view.
#[test]
fn delta_only_shard_serves_new_goal() {
    let base = GoalLibrary::from_id_implementations(
        3,
        1,
        vec![(GoalId::new(0), vec![ActionId::new(0), ActionId::new(1)])],
    )
    .unwrap();
    // One brand-new goal with a brand-new action, three shards: goal 2
    // routes to shard 2 % 3 = 2, which has no base model.
    let appends = vec![(2u32, vec![1u32, 3u32])];
    let shards = build_live_shards(&base, &appends, 3, PartitionMode::HashGoal);
    assert!(shards[2].model().is_none());
    assert!(shards[2].delta().is_some());

    let merged = merged_library(&base, &appends);
    let model = GoalModel::build(&merged).unwrap();
    let h = Activity::from_raw([1]);
    let mut sc = ShardScratch::new();
    for strategy in ShardStrategy::ALL {
        let (expect, _) = unsharded(&strategy, &model, &h, 10);
        strategy.rank_into(&shards, &h, 10, &mut sc);
        assert_identical(sc.out(), &expect, strategy.name());
    }
}
