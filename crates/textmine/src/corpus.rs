//! Building a goal implementation library from a story corpus.
//!
//! A *story* is a user-contributed description of how a goal was fulfilled
//! (43Things-style: a goal title plus free text). [`build_library`] runs
//! the action extractor over every story and assembles a
//! [`GoalLibrary`]: one implementation per story, goal = story goal,
//! activity = the extracted action set. Stories yielding no action are
//! skipped (and reported), mirroring the paper's 18k-extraction pipeline.

use crate::extract::ActionExtractor;
use goalrec_core::{GoalLibrary, LibraryBuilder};

/// One success story.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Story {
    /// The goal the story is about, e.g. "lose weight".
    pub goal: String,
    /// The free-text description of what the user did.
    pub text: String,
}

impl Story {
    /// Convenience constructor.
    pub fn new(goal: impl Into<String>, text: impl Into<String>) -> Self {
        Self {
            goal: goal.into(),
            text: text.into(),
        }
    }
}

/// Outcome of a corpus build.
#[derive(Debug)]
pub struct CorpusBuild {
    /// The assembled library.
    pub library: GoalLibrary,
    /// Indexes of stories that yielded no extractable action.
    pub skipped: Vec<usize>,
}

/// Extracts actions from every story and builds the library.
///
/// Returns `Err` only when *no* story yields an action (empty library).
pub fn build_library(
    stories: &[Story],
    extractor: &ActionExtractor,
) -> goalrec_core::Result<CorpusBuild> {
    let mut builder = LibraryBuilder::new();
    let mut skipped = Vec::new();
    for (i, story) in stories.iter().enumerate() {
        let actions: Vec<String> = extractor
            .extract(&story.text)
            .into_iter()
            .map(|a| a.key)
            .collect();
        if actions.is_empty() {
            skipped.push(i);
            continue;
        }
        builder.add_impl(&story.goal, actions)?;
    }
    Ok(CorpusBuild {
        library: builder.build()?,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stories() -> Vec<Story> {
        vec![
            Story::new(
                "lose weight",
                "1. join a gym\n2. stop eating at restaurants\n3. drink more water",
            ),
            Story::new(
                "lose weight",
                "I started jogging every morning. I quit soda.",
            ),
            Story::new(
                "learn english",
                "I enrolled in an evening class. I watched films without subtitles.",
            ),
            Story::new("be happy", "The weather was lovely."), // no actions
        ]
    }

    #[test]
    fn builds_one_impl_per_productive_story() {
        let build = build_library(&stories(), &ActionExtractor::default()).unwrap();
        assert_eq!(build.library.len(), 3);
        assert_eq!(build.skipped, vec![3]);
        assert_eq!(build.library.num_goals(), 2); // "be happy" never enters
    }

    #[test]
    fn alternative_implementations_share_a_goal() {
        let build = build_library(&stories(), &ActionExtractor::default()).unwrap();
        let g = build.library.goal_id("lose weight").unwrap();
        let count = build
            .library
            .implementations()
            .iter()
            .filter(|i| i.goal == g)
            .count();
        assert_eq!(count, 2);
    }

    #[test]
    fn actions_are_shared_across_stories_via_normalised_keys() {
        let mut s = stories();
        s.push(Story::new(
            "get fit",
            "I joined a gym. Started jogging too.",
        ));
        let build = build_library(&s, &ActionExtractor::default()).unwrap();
        // "join gym" appears in story 0 and the new one → same ActionId.
        let a = build.library.action_id("join gym").unwrap();
        let users: usize = build
            .library
            .implementations()
            .iter()
            .filter(|i| i.actions.contains(&a))
            .count();
        assert_eq!(users, 2);
    }

    #[test]
    fn all_skipped_yields_error() {
        let s = vec![Story::new("g", "no verbs here whatsoever")];
        assert!(build_library(&s, &ActionExtractor::default()).is_err());
    }

    #[test]
    fn extracted_library_supports_recommendation() {
        use goalrec_core::{strategies::Breadth, Activity, GoalRecommender, Recommender};
        let build = build_library(&stories(), &ActionExtractor::default()).unwrap();
        let lib = &build.library;
        let rec = GoalRecommender::from_library(lib, Box::new(Breadth)).unwrap();
        let h = Activity::from_actions([lib.action_id("join gym").unwrap()]);
        let top = rec.recommend_actions(&h, 3);
        assert!(!top.is_empty());
        // Recommendations come from "lose weight" implementations.
        let names: Vec<String> = top.iter().map(|&a| lib.action_name(a)).collect();
        assert!(
            names
                .iter()
                .any(|n| n.contains("stop eat") || n.contains("drink")),
            "unexpected recs: {names:?}"
        );
    }
}
