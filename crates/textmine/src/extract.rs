//! Action identification over success-story segments.
//!
//! This is the module the paper alludes to in §3: the authors "did this
//! action extraction with a module \[they\] developed for this purpose, that
//! works on a simpler model and for plain text". The simpler model here:
//!
//! 1. split the story into segments (sentences / list items);
//! 2. a segment yields an action when a lexicon verb anchors it — in
//!    imperative position ("join a gym"), or after a first-person subject
//!    ("I joined a gym", "then I finally quit soda");
//! 3. the action key is the stemmed verb plus up to `max_object_tokens`
//!    stemmed non-stopword tokens that follow it, so "stopped eating at
//!    restaurants" and "stop eating at restaurant" collapse to the same
//!    identifier.

use crate::lexicon::{is_action_verb, is_stopword};
use crate::stem::stem;
use crate::tokenize::{segments, tokenize};

/// Extraction parameters.
#[derive(Debug, Clone)]
pub struct ExtractorConfig {
    /// Maximum non-stopword object tokens appended after the verb.
    pub max_object_tokens: usize,
    /// How deep into a segment the anchor verb may sit (imperatives sit at
    /// 0; "then I finally quit" puts it at 3).
    pub max_anchor_offset: usize,
}

impl Default for ExtractorConfig {
    fn default() -> Self {
        Self {
            max_object_tokens: 3,
            max_anchor_offset: 4,
        }
    }
}

/// An extracted action occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedAction {
    /// Normalised action key, e.g. `"stop eat restaur"`.
    pub key: String,
    /// The segment the action came from (for provenance/debugging).
    pub segment: String,
}

/// The action extractor.
#[derive(Debug, Clone, Default)]
pub struct ActionExtractor {
    cfg: ExtractorConfig,
}

impl ActionExtractor {
    /// Creates an extractor with the given configuration.
    pub fn new(cfg: ExtractorConfig) -> Self {
        Self { cfg }
    }

    /// Extracts all action occurrences from a story text, in order,
    /// deduplicated by key.
    pub fn extract(&self, text: &str) -> Vec<ExtractedAction> {
        let mut out: Vec<ExtractedAction> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for segment in segments(text) {
            for chunk in split_conjunctions(&segment) {
                if let Some(key) = self.segment_action(&chunk) {
                    if seen.insert(key.clone()) {
                        out.push(ExtractedAction {
                            key,
                            segment: segment.clone(),
                        });
                    }
                }
            }
        }
        out
    }

    /// Tries to read one action from a segment: finds the first lexicon
    /// verb within the anchor window and builds the normalised key.
    fn segment_action(&self, segment: &str) -> Option<String> {
        let tokens = tokenize(segment);
        let anchor = tokens
            .iter()
            .take(self.cfg.max_anchor_offset + 1)
            .position(|t| is_action_verb(t))?;
        // Imperative ("join a gym") or first-person report ("I joined…"):
        // everything before the anchor must be stopwords (subjects,
        // adverbs); a content word before the verb means the verb is
        // probably not the predicate ("my gym membership started…" would
        // be rejected by "gym"/"membership").
        if !tokens[..anchor].iter().all(|t| is_stopword(t)) {
            return None;
        }
        let mut key = stem(&tokens[anchor]);
        let mut object_tokens = 0;
        for t in &tokens[anchor + 1..] {
            if object_tokens == self.cfg.max_object_tokens {
                break;
            }
            if is_stopword(t) {
                continue;
            }
            key.push(' ');
            key.push_str(&stem(t));
            object_tokens += 1;
        }
        Some(key)
    }
}

/// Splits a segment at coordinating "and"s that introduce a *new verb
/// phrase* ("join a gym and drink more water" → two chunks), while
/// leaving object conjunctions intact ("cut sugar and carbs" stays one
/// chunk). An "and" is a boundary when the next non-stopword word is a
/// lexicon verb.
fn split_conjunctions(segment: &str) -> Vec<String> {
    let words: Vec<&str> = segment.split_whitespace().collect();
    let mut chunks: Vec<String> = Vec::new();
    let mut start = 0usize;
    for i in 0..words.len() {
        if !words[i].eq_ignore_ascii_case("and") {
            continue;
        }
        let next_content = words[i + 1..]
            .iter()
            .map(|w| w.to_ascii_lowercase())
            .find(|w| !is_stopword(w));
        if next_content.as_deref().is_some_and(is_action_verb) && i > start {
            chunks.push(words[start..i].join(" "));
            start = i + 1;
        }
    }
    if start == 0 {
        return vec![segment.to_owned()];
    }
    if start < words.len() {
        chunks.push(words[start..].join(" "));
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(text: &str) -> Vec<String> {
        ActionExtractor::default()
            .extract(text)
            .into_iter()
            .map(|a| a.key)
            .collect()
    }

    #[test]
    fn imperative_list_items() {
        let got = keys("1. join a gym\n2. drink more water\n3. stop eating at restaurants");
        assert_eq!(got, vec!["join gym", "drink water", "stop eat restaur"]);
    }

    #[test]
    fn first_person_reports() {
        let got = keys("I joined a gym. Then I finally quit soda.");
        assert_eq!(got, vec!["join gym", "quit soda"]);
    }

    #[test]
    fn inflections_collapse_to_one_key() {
        let a = keys("stop eating at restaurants");
        let b = keys("I stopped eating at restaurants");
        let c = keys("Stopped eating at the restaurant");
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn non_action_segments_skipped() {
        assert!(keys("The weather was lovely").is_empty());
        assert!(keys("My gym membership started in June").is_empty());
        assert!(keys("").is_empty());
    }

    #[test]
    fn anchor_window_limits_search() {
        // Verb beyond the window (offset 5 with default window 4).
        let tight = ActionExtractor::new(ExtractorConfig {
            max_object_tokens: 3,
            max_anchor_offset: 0,
        });
        assert!(tight.extract("I joined a gym").is_empty()); // anchor at 1
        assert_eq!(tight.extract("join a gym").len(), 1); // anchor at 0
    }

    #[test]
    fn object_tokens_capped() {
        let short = ActionExtractor::new(ExtractorConfig {
            max_object_tokens: 1,
            max_anchor_offset: 4,
        });
        let got = short.extract("stop eating greasy fried food");
        assert_eq!(got[0].key, "stop eat");
    }

    #[test]
    fn duplicates_within_story_dedup() {
        let got = keys("I joined a gym. Later I joined the gym again.");
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn provenance_segment_retained() {
        let acts = ActionExtractor::default().extract("1. join a gym");
        assert_eq!(acts[0].segment, "join a gym");
    }

    #[test]
    fn content_word_before_verb_blocks_extraction() {
        assert!(keys("healthy meals take time").is_empty());
    }

    #[test]
    fn verb_conjunctions_split_into_separate_actions() {
        assert_eq!(
            keys("join a gym and drink more water"),
            vec!["join gym", "drink water"]
        );
        assert_eq!(
            keys("I joined a gym and quit soda."),
            vec!["join gym", "quit soda"]
        );
    }

    #[test]
    fn object_conjunctions_stay_one_action() {
        // "carbs" is not a verb, so the "and" is part of the object.
        assert_eq!(keys("cut sugar and carbs"), vec!["cut sugar carb"]);
    }

    #[test]
    fn stopwords_between_and_and_verb_are_skipped() {
        // "and then I quit soda" — "then"/"i" are stopwords before the verb.
        assert_eq!(
            keys("I joined a gym and then I quit soda"),
            vec!["join gym", "quit soda"]
        );
    }

    #[test]
    fn auxiliary_verb_chains_are_handled() {
        // Auxiliaries are stopwords, so the anchor lands on the gerund.
        assert_eq!(keys("I have been drinking more water"), vec!["drink water"]);
        assert_eq!(keys("I will join a gym"), vec!["join gym"]);
    }

    #[test]
    fn trailing_and_does_not_panic() {
        let got = keys("join a gym and");
        assert_eq!(got, vec!["join gym"]);
    }
}
