//! Verb lexicon and stopwords for action identification.
//!
//! The extractor recognises a segment as an action when it is anchored on
//! a verb from this lexicon — either in imperative position ("join a gym")
//! or as a first-person past/present report ("I joined a gym"). The
//! lexicon stores *stems* so every inflection matches.

use crate::stem::stem;
use std::collections::HashSet;
use std::sync::OnceLock;

/// Common action verbs in goal-fulfilment stories (stored unstemmed here;
/// compare via [`is_action_verb`], which stems both sides).
const ACTION_VERBS: &[&str] = &[
    "add",
    "ask",
    "attend",
    "avoid",
    "bake",
    "become",
    "begin",
    "book",
    "build",
    "buy",
    "call",
    "change",
    "check",
    "choose",
    "clean",
    "close",
    "commit",
    "complete",
    "cook",
    "count",
    "create",
    "cut",
    "decide",
    "download",
    "drink",
    "eat",
    "enroll",
    "exercise",
    "find",
    "finish",
    "follow",
    "get",
    "give",
    "go",
    "grow",
    "hire",
    "install",
    "join",
    "jog",
    "keep",
    "learn",
    "leave",
    "limit",
    "listen",
    "lift",
    "make",
    "measure",
    "meditate",
    "meet",
    "move",
    "open",
    "organize",
    "pay",
    "plan",
    "practice",
    "prepare",
    "quit",
    "read",
    "record",
    "reduce",
    "register",
    "remove",
    "run",
    "save",
    "schedule",
    "set",
    "sign",
    "sleep",
    "speak",
    "start",
    "stop",
    "stretch",
    "study",
    "swim",
    "take",
    "talk",
    "track",
    "train",
    "travel",
    "try",
    "turn",
    "update",
    "use",
    "visit",
    "volunteer",
    "wake",
    "walk",
    "watch",
    "write",
];

/// English stopwords dropped from action phrases (pronouns, articles,
/// auxiliaries, common prepositions).
const STOPWORDS: &[&str] = &[
    "a", "about", "after", "again", "all", "also", "am", "an", "and", "any", "are", "as", "at",
    "be", "because", "been", "before", "being", "but", "by", "can", "could", "did", "do", "does",
    "doing", "down", "each", "every", "few", "finally", "first", "for", "from", "had", "has",
    "have", "having", "he", "her", "here", "him", "his", "how", "i", "if", "in", "into", "is",
    "it", "its", "just", "me", "more", "most", "my", "myself", "next", "no", "not", "now", "of",
    "off", "on", "once", "only", "or", "other", "our", "out", "over", "own", "really", "she",
    "should", "so", "some", "soon", "such", "than", "that", "the", "their", "them", "then",
    "there", "these", "they", "this", "those", "through", "to", "too", "under", "until", "up",
    "very", "was", "we", "were", "what", "when", "where", "which", "while", "who", "why", "will",
    "with", "would", "you", "your",
];

fn verb_stems() -> &'static HashSet<String> {
    static SET: OnceLock<HashSet<String>> = OnceLock::new();
    SET.get_or_init(|| ACTION_VERBS.iter().map(|v| stem(v)).collect())
}

fn stopword_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// Whether a (lowercase) token is an action verb in any inflection.
pub fn is_action_verb(token: &str) -> bool {
    verb_stems().contains(stem(token).as_str())
}

/// Whether a (lowercase) token is a stopword.
pub fn is_stopword(token: &str) -> bool {
    stopword_set().contains(token)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inflections_match_the_lexicon() {
        for v in ["join", "joined", "joining", "joins"] {
            assert!(is_action_verb(v), "{v}");
        }
        assert!(is_action_verb("stopped"));
        assert!(is_action_verb("studies"));
        assert!(is_action_verb("exercising"));
    }

    #[test]
    fn non_verbs_rejected() {
        for w in ["gym", "restaurant", "water", "the", "happy"] {
            assert!(!is_action_verb(w), "{w}");
        }
    }

    #[test]
    fn stopwords_detected() {
        for w in ["the", "i", "at", "to", "was"] {
            assert!(is_stopword(w), "{w}");
        }
        for w in ["gym", "run", "sugar"] {
            assert!(!is_stopword(w), "{w}");
        }
    }

    #[test]
    fn lexicon_entries_are_lowercase_and_sorted_for_review() {
        for list in [ACTION_VERBS, STOPWORDS] {
            for w in list {
                assert_eq!(*w, w.to_ascii_lowercase());
            }
        }
    }
}
