//! # goalrec-textmine
//!
//! Extraction of goal implementations from free-text success stories — the
//! pipeline §3 of the paper describes for turning 43Things-style
//! user-generated descriptions into a structured implementation library.
//!
//! The pipeline: [`tokenize`] splits a story into sentence / list-item
//! segments; [`extract`] anchors each segment on a lexicon verb
//! ([`lexicon`]) and normalises the phrase with a from-scratch Porter
//! stemmer ([`mod@stem`]); [`corpus`] assembles the extracted action sets into
//! a [`goalrec_core::GoalLibrary`].
//!
//! ```
//! use goalrec_textmine::{build_library, ActionExtractor, Story};
//!
//! let stories = vec![
//!     Story::new("lose weight", "1. join a gym\n2. stop eating at restaurants"),
//!     Story::new("lose weight", "I quit soda. I started jogging."),
//! ];
//! let build = build_library(&stories, &ActionExtractor::default()).unwrap();
//! assert_eq!(build.library.len(), 2);
//! assert!(build.library.action_id("join gym").is_some());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod corpus;
pub mod extract;
pub mod lexicon;
pub mod stem;
pub mod synth;
pub mod tokenize;

pub use corpus::{build_library, CorpusBuild, Story};
pub use extract::{ActionExtractor, ExtractedAction, ExtractorConfig};
pub use stem::stem;
pub use synth::{generate as generate_stories, SynthConfig, SynthCorpus};
