//! Porter stemmer (Porter, 1980), implemented from the original paper.
//!
//! Action identification needs to conflate inflected verb forms — a story
//! saying "stopped eating at restaurants" and another saying "stop eating
//! at restaurants" describe the same action. The classic five-step Porter
//! algorithm reduces English words to stems ("stopped" → "stop",
//! "running" → "run", "relational" → "relat").

/// Stems one lowercase ASCII word. Words shorter than 3 characters are
/// returned unchanged, as in the original algorithm.
pub fn stem(word: &str) -> String {
    let mut w: Vec<u8> = word
        .bytes()
        .filter(|b| b.is_ascii_alphabetic())
        .map(|b| b.to_ascii_lowercase())
        .collect();
    if w.len() <= 2 {
        return String::from_utf8_lossy(&w).into_owned();
    }
    step_1a(&mut w);
    step_1b(&mut w);
    step_1c(&mut w);
    step_2(&mut w);
    step_3(&mut w);
    step_4(&mut w);
    step_5a(&mut w);
    step_5b(&mut w);
    String::from_utf8_lossy(&w).into_owned()
}

fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => i == 0 || !is_consonant(w, i - 1),
        _ => true,
    }
}

/// The *measure* m of the stem `w[..len]`: the number of VC sequences in
/// its C?(VC)^m V? form.
fn measure(w: &[u8], len: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // Skip initial consonants.
    while i < len && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // Skip vowels.
        while i < len && !is_consonant(w, i) {
            i += 1;
        }
        if i >= len {
            return m;
        }
        // Skip consonants — completes one VC.
        while i < len && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
    }
}

fn has_vowel(w: &[u8], len: usize) -> bool {
    (0..len).any(|i| !is_consonant(w, i))
}

fn ends_double_consonant(w: &[u8]) -> bool {
    let n = w.len();
    n >= 2 && w[n - 1] == w[n - 2] && is_consonant(w, n - 1)
}

/// *o condition: stem ends CVC where the final C is not w, x or y.
fn ends_cvc(w: &[u8], len: usize) -> bool {
    if len < 3 {
        return false;
    }
    is_consonant(w, len - 3)
        && !is_consonant(w, len - 2)
        && is_consonant(w, len - 1)
        && !matches!(w[len - 1], b'w' | b'x' | b'y')
}

fn ends_with(w: &[u8], suffix: &str) -> bool {
    w.ends_with(suffix.as_bytes())
}

fn replace_suffix(w: &mut Vec<u8>, suffix: &str, replacement: &str) {
    let new_len = w.len() - suffix.len();
    w.truncate(new_len);
    w.extend_from_slice(replacement.as_bytes());
}

/// Applies `old → new` if the word ends with `old` and the remaining stem
/// has measure > `min_m`. Returns true if the suffix matched (even when
/// the measure test failed), following the first-match-wins rule lists.
fn try_rule(w: &mut Vec<u8>, old: &str, new: &str, min_m: usize) -> bool {
    if !ends_with(w, old) {
        return false;
    }
    let stem_len = w.len() - old.len();
    if measure(w, stem_len) > min_m {
        replace_suffix(w, old, new);
    }
    true
}

fn step_1a(w: &mut Vec<u8>) {
    if ends_with(w, "sses") {
        replace_suffix(w, "sses", "ss");
    } else if ends_with(w, "ies") {
        replace_suffix(w, "ies", "i");
    } else if ends_with(w, "ss") {
        // keep
    } else if ends_with(w, "s") {
        w.pop();
    }
}

fn step_1b(w: &mut Vec<u8>) {
    if ends_with(w, "eed") {
        if measure(w, w.len() - 3) > 0 {
            w.pop();
        }
        return;
    }
    let stripped = if ends_with(w, "ing") && has_vowel(w, w.len() - 3) {
        w.truncate(w.len() - 3);
        true
    } else if ends_with(w, "ed") && has_vowel(w, w.len() - 2) {
        w.truncate(w.len() - 2);
        true
    } else {
        false
    };
    if stripped {
        if ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz") {
            w.push(b'e');
        } else if ends_double_consonant(w) && !matches!(w[w.len() - 1], b'l' | b's' | b'z') {
            w.pop();
        } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
            w.push(b'e');
        }
    }
}

fn step_1c(w: &mut [u8]) {
    if ends_with(w, "y") && has_vowel(w, w.len() - 1) {
        let n = w.len();
        w[n - 1] = b'i';
    }
}

fn step_2(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for &(old, new) in RULES {
        if try_rule(w, old, new, 0) {
            return;
        }
    }
}

fn step_3(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for &(old, new) in RULES {
        if try_rule(w, old, new, 0) {
            return;
        }
    }
}

fn step_4(w: &mut Vec<u8>) {
    const RULES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
        "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    // "ion" needs the extra (s|t) condition; handle the list in order of
    // the original paper (which interleaves "ion" after "ent").
    for &old in &RULES[..11] {
        if ends_with(w, old) {
            let stem_len = w.len() - old.len();
            if measure(w, stem_len) > 1 {
                w.truncate(stem_len);
            }
            return;
        }
    }
    if ends_with(w, "ion") {
        let stem_len = w.len() - 3;
        if stem_len > 0 && matches!(w[stem_len - 1], b's' | b't') && measure(w, stem_len) > 1 {
            w.truncate(stem_len);
        }
        return;
    }
    for &old in &RULES[11..] {
        if ends_with(w, old) {
            let stem_len = w.len() - old.len();
            if measure(w, stem_len) > 1 {
                w.truncate(stem_len);
            }
            return;
        }
    }
}

fn step_5a(w: &mut Vec<u8>) {
    if ends_with(w, "e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
            w.pop();
        }
    }
}

fn step_5b(w: &mut Vec<u8>) {
    if measure(w, w.len()) > 1 && ends_double_consonant(w) && w[w.len() - 1] == b'l' {
        w.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn canonical_examples_from_the_paper() {
        // Examples from Porter (1980).
        assert_eq!(stem("caresses"), "caress");
        assert_eq!(stem("ponies"), "poni");
        assert_eq!(stem("caress"), "caress");
        assert_eq!(stem("cats"), "cat");
        assert_eq!(stem("feed"), "feed");
        assert_eq!(stem("agreed"), "agre");
        assert_eq!(stem("plastered"), "plaster");
        assert_eq!(stem("bled"), "bled");
        assert_eq!(stem("motoring"), "motor");
        assert_eq!(stem("sing"), "sing");
        assert_eq!(stem("conflated"), "conflat");
        assert_eq!(stem("troubled"), "troubl");
        assert_eq!(stem("sized"), "size");
        assert_eq!(stem("hopping"), "hop");
        assert_eq!(stem("tanned"), "tan");
        assert_eq!(stem("falling"), "fall");
        assert_eq!(stem("hissing"), "hiss");
        assert_eq!(stem("fizzed"), "fizz");
        assert_eq!(stem("failing"), "fail");
        assert_eq!(stem("filing"), "file");
        assert_eq!(stem("happy"), "happi");
        assert_eq!(stem("sky"), "sky");
        assert_eq!(stem("relational"), "relat");
        assert_eq!(stem("conditional"), "condit");
        assert_eq!(stem("rational"), "ration");
        assert_eq!(stem("triplicate"), "triplic");
        assert_eq!(stem("formative"), "form");
        assert_eq!(stem("formalize"), "formal");
        assert_eq!(stem("revival"), "reviv");
        assert_eq!(stem("allowance"), "allow");
        assert_eq!(stem("inference"), "infer");
        assert_eq!(stem("adjustment"), "adjust");
        assert_eq!(stem("adoption"), "adopt");
        assert_eq!(stem("probate"), "probat");
        assert_eq!(stem("rate"), "rate");
        assert_eq!(stem("cease"), "ceas");
        assert_eq!(stem("controll"), "control");
        assert_eq!(stem("roll"), "roll");
    }

    #[test]
    fn verb_inflections_conflate_for_action_matching() {
        // The property the extractor relies on.
        assert_eq!(stem("stopped"), stem("stop"));
        assert_eq!(stem("running"), stem("runs"));
        assert_eq!(stem("eating"), stem("eats"));
        assert_eq!(stem("studied"), stem("study"));
        assert_eq!(stem("exercising"), stem("exercise"));
    }

    #[test]
    fn short_words_unchanged() {
        assert_eq!(stem("be"), "be");
        assert_eq!(stem("a"), "a");
        assert_eq!(stem(""), "");
        assert_eq!(stem("go"), "go");
    }

    #[test]
    fn non_alphabetic_characters_are_dropped() {
        assert_eq!(stem("run-ning"), stem("running"));
        assert_eq!(stem("Stop!"), "stop");
        assert_eq!(stem("DON'T"), "dont");
    }

    #[test]
    fn measure_computation() {
        // From the Porter paper: tr(m=0), ee(0), tree(0), y(0), by(0);
        // trouble(1), oats(1), trees(1), ivy(1); troubles(2), private(2).
        let m = |s: &str| measure(s.as_bytes(), s.len());
        assert_eq!(m("tr"), 0);
        assert_eq!(m("ee"), 0);
        assert_eq!(m("tree"), 0);
        assert_eq!(m("by"), 0);
        assert_eq!(m("trouble"), 1);
        assert_eq!(m("oats"), 1);
        assert_eq!(m("ivy"), 1);
        assert_eq!(m("troubles"), 2);
        assert_eq!(m("private"), 2);
    }

    proptest! {
        #[test]
        fn prop_stemming_is_idempotent(word in "[a-z]{1,15}") {
            let once = stem(&word);
            // A second application may shrink further only in pathological
            // Porter edge cases; classic Porter is *not* formally
            // idempotent, but stems never grow and never panic.
            let twice = stem(&once);
            prop_assert!(twice.len() <= once.len());
        }

        #[test]
        fn prop_output_is_lowercase_ascii(word in "[a-zA-Z]{0,20}") {
            let s = stem(&word);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
            prop_assert!(s.len() <= word.len());
        }
    }
}
