//! Synthetic success-story generation.
//!
//! The authors' 43Things crawl is gone, so there is no large text corpus
//! to run the extractor on. This module generates one: given goal names
//! and per-goal action phrases, it renders stories in varied surface forms
//! (imperative lists, first-person prose, mixed inflections and filler
//! sentences) such that the extraction pipeline has to do real work —
//! segmenting, anchoring on verbs, stemming — to recover the planted
//! implementation structure.

use crate::lexicon::is_action_verb;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A planted corpus: the rendered stories plus the ground-truth actions of
/// each story (in normalised phrase form, *before* stemming).
#[derive(Debug, Clone)]
pub struct SynthCorpus {
    /// Rendered stories, one per planted implementation.
    pub stories: Vec<crate::Story>,
    /// Ground truth: for each story, the action phrases planted into it.
    pub planted: Vec<Vec<String>>,
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of stories to render.
    pub num_stories: usize,
    /// Actions planted per story, inclusive range.
    pub actions_per_story: (usize, usize),
    /// Probability of rendering a story as a numbered/bulleted list rather
    /// than prose.
    pub list_probability: f64,
    /// Probability of interleaving a non-action filler sentence.
    pub filler_probability: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self {
            num_stories: 50,
            actions_per_story: (2, 5),
            list_probability: 0.4,
            filler_probability: 0.3,
            seed: 0x5709,
        }
    }
}

/// Built-in goal → candidate action phrases, all anchored on lexicon
/// verbs. Callers can supply their own via [`generate_with_catalog`].
pub fn default_catalog() -> Vec<(&'static str, Vec<&'static str>)> {
    vec![
        (
            "lose weight",
            vec![
                "join a gym",
                "stop eating at restaurants",
                "drink more water",
                "track calories",
                "walk to work",
                "cut sugar",
                "cook at home",
            ],
        ),
        (
            "get fit",
            vec![
                "join a gym",
                "lift weights",
                "stretch every morning",
                "swim twice weekly",
                "run intervals",
            ],
        ),
        (
            "learn english",
            vec![
                "enroll in a class",
                "watch films without subtitles",
                "read novels",
                "practice with natives",
                "write a diary",
            ],
        ),
        (
            "save money",
            vec![
                "track expenses",
                "cut subscriptions",
                "cook at home",
                "stop eating at restaurants",
                "open a savings account",
            ],
        ),
        (
            "get a new job",
            vec![
                "update the resume",
                "attend meetups",
                "practice interviews",
                "learn a framework",
                "ask for referrals",
            ],
        ),
    ]
}

const FILLERS: &[&str] = &[
    "It was harder than expected.",
    "My friends were very supportive.",
    "The first week felt impossible.",
    "Honestly, the weather helped.",
    "Progress was slow but steady.",
];

/// Generates a corpus from the default catalog.
pub fn generate(cfg: &SynthConfig) -> SynthCorpus {
    let catalog: Vec<(String, Vec<String>)> = default_catalog()
        .into_iter()
        .map(|(g, acts)| (g.to_owned(), acts.into_iter().map(str::to_owned).collect()))
        .collect();
    generate_with_catalog(cfg, &catalog)
}

/// Generates a corpus from a caller-supplied goal → action-phrase catalog.
///
/// # Panics
/// Panics if the catalog is empty, any goal has no actions, or any action
/// phrase does not start with a lexicon verb (it could never be
/// extracted, making the ground truth unsatisfiable).
pub fn generate_with_catalog(cfg: &SynthConfig, catalog: &[(String, Vec<String>)]) -> SynthCorpus {
    assert!(!catalog.is_empty(), "catalog must not be empty");
    for (goal, actions) in catalog {
        assert!(!actions.is_empty(), "goal {goal} has no actions");
        for a in actions {
            let first = a.split_whitespace().next().unwrap_or("");
            assert!(
                is_action_verb(first),
                "action phrase '{a}' does not start with a lexicon verb"
            );
        }
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut stories = Vec::with_capacity(cfg.num_stories);
    let mut planted = Vec::with_capacity(cfg.num_stories);
    for _ in 0..cfg.num_stories {
        let (goal, pool) = &catalog[rng.gen_range(0..catalog.len())];
        let n = rng
            .gen_range(cfg.actions_per_story.0..=cfg.actions_per_story.1)
            .min(pool.len());
        // Distinct actions, order shuffled.
        let mut idx: Vec<usize> = (0..pool.len()).collect();
        for i in (1..idx.len()).rev() {
            let j = rng.gen_range(0..=i);
            idx.swap(i, j);
        }
        let chosen: Vec<String> = idx[..n].iter().map(|&i| pool[i].clone()).collect();
        let text = if rng.gen::<f64>() < cfg.list_probability {
            render_list(&chosen, &mut rng)
        } else {
            render_prose(&chosen, cfg.filler_probability, &mut rng)
        };
        stories.push(crate::Story::new(goal.clone(), text));
        planted.push(chosen);
    }
    SynthCorpus { stories, planted }
}

fn render_list(actions: &[String], rng: &mut StdRng) -> String {
    let numbered = rng.gen::<bool>();
    actions
        .iter()
        .enumerate()
        .map(|(i, a)| {
            if numbered {
                format!("{}. {a}", i + 1)
            } else {
                format!("- {a}")
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn render_prose(actions: &[String], filler_probability: f64, rng: &mut StdRng) -> String {
    let mut sentences = Vec::new();
    for a in actions {
        let sentence = match rng.gen_range(0..3) {
            // Every word before the planted verb is a stopword, so the
            // extractor's anchor lands on the verb itself.
            0 => format!("So I had to {a}."),
            1 => {
                let past = past_tense(a);
                if conflates(a, &past) {
                    format!("Then I {past}.")
                } else {
                    // Irregular verb: the naive past form would not stem
                    // back to the base, so keep the base form.
                    format!("After that I would {a}.")
                }
            }
            _ => format!("First, {a}."),
        };
        sentences.push(sentence);
        if rng.gen::<f64>() < filler_probability {
            sentences.push(FILLERS[rng.gen_range(0..FILLERS.len())].to_owned());
        }
    }
    sentences.join(" ")
}

/// Whether the inflected phrase stems back to the base phrase's verb —
/// the precondition for the extractor to unify the two surface forms.
fn conflates(base: &str, inflected: &str) -> bool {
    let v = |p: &str| crate::stem::stem(p.split_whitespace().next().unwrap_or(""));
    v(base) == v(inflected)
}

/// Crude past-tense inflection of the leading verb — enough surface
/// variation to exercise the stemmer ("join a gym" → "joined a gym").
fn past_tense(phrase: &str) -> String {
    let mut parts = phrase.splitn(2, ' ');
    let verb = parts.next().unwrap_or("");
    let rest = parts.next().unwrap_or("");
    let past = if verb.ends_with('e') {
        format!("{verb}d")
    } else if verb.ends_with('p') && verb.len() == 4 {
        // stop → stopped (final-consonant doubling for short CVC verbs)
        format!("{verb}{}ed", &verb[verb.len() - 1..])
    } else {
        format!("{verb}ed")
    };
    if rest.is_empty() {
        past
    } else {
        format!("{past} {rest}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_library, ActionExtractor};

    #[test]
    fn generates_requested_story_count() {
        let corpus = generate(&SynthConfig::default());
        assert_eq!(corpus.stories.len(), 50);
        assert_eq!(corpus.planted.len(), 50);
        for (story, planted) in corpus.stories.iter().zip(&corpus.planted) {
            assert!(!story.text.is_empty());
            assert!(!planted.is_empty());
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = generate(&SynthConfig::default());
        let b = generate(&SynthConfig::default());
        assert_eq!(a.stories, b.stories);
    }

    #[test]
    fn extraction_recovers_planted_actions() {
        // The whole point: the pipeline must recover what was planted,
        // despite inflection and filler noise.
        let corpus = generate(&SynthConfig {
            num_stories: 80,
            ..SynthConfig::default()
        });
        let extractor = ActionExtractor::default();
        let mut recovered = 0usize;
        let mut total = 0usize;
        for (story, planted) in corpus.stories.iter().zip(&corpus.planted) {
            let keys: Vec<String> = extractor
                .extract(&story.text)
                .into_iter()
                .map(|a| a.key)
                .collect();
            for phrase in planted {
                total += 1;
                // The planted phrase, extracted in isolation, gives the
                // expected key; it must appear among the story's keys.
                let expect = &extractor.extract(phrase)[0].key;
                if keys.contains(expect) {
                    recovered += 1;
                }
            }
        }
        let rate = recovered as f64 / total as f64;
        assert!(rate > 0.95, "recovery rate {rate} ({recovered}/{total})");
    }

    #[test]
    fn corpus_builds_a_recommendable_library() {
        let corpus = generate(&SynthConfig {
            num_stories: 60,
            ..SynthConfig::default()
        });
        let build = build_library(&corpus.stories, &ActionExtractor::default()).unwrap();
        assert!(build.library.len() >= 55, "too many skipped stories");
        assert!(build.library.num_goals() <= 5);
        // Shared actions across goals exist ("join a gym" serves both
        // lose-weight and get-fit).
        let stats = build.library.stats();
        assert!(
            stats.connectivity > 1.5,
            "connectivity {}",
            stats.connectivity
        );
    }

    #[test]
    fn past_tense_inflections() {
        assert_eq!(past_tense("join a gym"), "joined a gym");
        assert_eq!(past_tense("practice interviews"), "practiced interviews");
        assert_eq!(past_tense("stop eating out"), "stopped eating out");
    }

    #[test]
    #[should_panic(expected = "lexicon verb")]
    fn catalog_validation_rejects_non_verb_phrases() {
        let catalog = vec![("g".to_owned(), vec!["banana split".to_owned()])];
        generate_with_catalog(&SynthConfig::default(), &catalog);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_catalog_rejected() {
        generate_with_catalog(&SynthConfig::default(), &[]);
    }
}
