//! Tokenisation and segment splitting for success-story text.
//!
//! Stories on goal-sharing sites mix prose ("First I joined a gym. Then I
//! stopped eating out.") with enumerations ("1. join a gym\n2. eat less").
//! The extractor works segment-by-segment, where a segment is a sentence
//! or a list item — the same structural cues (punctuation, enumeration)
//! the extraction literature cited in §3 uses.

/// Lowercase word tokens of a segment; alphabetic runs only, apostrophes
/// collapsed ("don't" → "dont").
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_ascii_alphabetic() {
            current.push(ch.to_ascii_lowercase());
        } else if ch == '\'' {
            // join contractions
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Splits a story into segments: list items (lines starting with a bullet
/// or `N.`/`N)` enumerator) and sentences (split on `.`, `!`, `?`, `;`).
pub fn segments(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let body = strip_enumerator(trimmed);
        if body.len() != trimmed.len() {
            // Enumerated list item: one segment, whole line.
            let body = body.trim();
            if !body.is_empty() {
                out.push(body.to_owned());
            }
            continue;
        }
        for sentence in trimmed.split(['.', '!', '?', ';']) {
            let s = sentence.trim();
            if !s.is_empty() {
                out.push(s.to_owned());
            }
        }
    }
    out
}

/// Removes a leading list enumerator (`-`, `*`, `•`, `1.`, `2)` …),
/// returning the remainder (or the input unchanged when there is none).
fn strip_enumerator(line: &str) -> &str {
    let l = line.trim_start();
    if let Some(rest) = l.strip_prefix(['-', '*', '•']) {
        return rest;
    }
    let digits = l.chars().take_while(|c| c.is_ascii_digit()).count();
    if digits > 0 {
        let after = &l[digits..];
        if let Some(rest) = after.strip_prefix(['.', ')']) {
            return rest;
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_lowercase_words() {
        assert_eq!(
            tokenize("Stopped eating at Restaurants!"),
            vec!["stopped", "eating", "at", "restaurants"]
        );
    }

    #[test]
    fn contractions_join() {
        assert_eq!(tokenize("don't stop"), vec!["dont", "stop"]);
    }

    #[test]
    fn numbers_and_punctuation_split_tokens() {
        assert_eq!(tokenize("run 5km/day"), vec!["run", "km", "day"]);
        assert!(tokenize("123 456").is_empty());
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn sentences_split_on_terminators() {
        let segs = segments("I joined a gym. Then I ran; it helped! Really?");
        assert_eq!(
            segs,
            vec!["I joined a gym", "Then I ran", "it helped", "Really"]
        );
    }

    #[test]
    fn list_items_are_single_segments() {
        let segs = segments("1. join a gym\n2) eat less sugar\n- drink more water\n* sleep early");
        assert_eq!(
            segs,
            vec![
                "join a gym",
                "eat less sugar",
                "drink more water",
                "sleep early"
            ]
        );
    }

    #[test]
    fn list_item_with_inner_period_stays_whole() {
        let segs = segments("- run 5km. every morning");
        assert_eq!(segs, vec!["run 5km. every morning"]);
    }

    #[test]
    fn mixed_prose_and_lists() {
        let segs = segments("Here is what I did.\n1. quit soda\nIt worked. Truly.");
        assert_eq!(
            segs,
            vec!["Here is what I did", "quit soda", "It worked", "Truly"]
        );
    }

    #[test]
    fn blank_lines_and_bare_enumerators_skipped() {
        let segs = segments("\n\n1.\n- \nreal content");
        assert_eq!(segs, vec!["real content"]);
    }

    #[test]
    fn strip_enumerator_leaves_plain_lines() {
        assert_eq!(strip_enumerator("plain line"), "plain line");
        assert_eq!(strip_enumerator("12 monkeys"), "12 monkeys");
    }
}
