//! Grocery store scenario (§6 dataset (a)) at miniature scale: generate a
//! synthetic FoodMart, pick a real cart, and compare what every method —
//! goal-based and baseline — recommends for it.
//!
//! Run with: `cargo run --release --example grocery_store`

use goalrec::baselines::{
    AlsConfig, AlsWr, CfKnn, ContentBased, ItemFeatures, Popularity, TrainingSet,
};
use goalrec::core::{GoalModel, GoalRecommender, Recommender};
use goalrec::datasets::{FoodMart, FoodMartConfig};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = FoodMartConfig::test_scale();
    let fm = FoodMart::generate(&cfg);
    let stats = fm.library.stats();
    println!(
        "generated FoodMart: {} recipes over {} products (connectivity {:.1}), {} carts / {} users\n",
        stats.num_implementations, stats.num_actions, stats.connectivity,
        fm.carts.len(), fm.num_users
    );

    let cart = &fm.carts[7];
    let items: Vec<String> = cart.iter().map(|a| fm.library.action_name(a)).collect();
    println!("cart #7 ({} items): {}\n", cart.len(), items.join(", "));

    // Goal-based methods share one compiled model.
    let model = Arc::new(GoalModel::build(&fm.library)?);
    let mut methods: Vec<Box<dyn Recommender>> = GoalRecommender::all_strategies(model)
        .into_iter()
        .map(|r| Box::new(r) as Box<dyn Recommender>)
        .collect();

    // Baselines train on all carts.
    let training = TrainingSet::new(fm.carts.clone(), fm.library.num_actions());
    methods.push(Box::new(ContentBased::new(ItemFeatures::new(
        fm.product_feature_vectors(),
    ))));
    methods.push(Box::new(CfKnn::tanimoto(training.clone(), 10)));
    methods.push(Box::new(AlsWr::train(
        &training,
        AlsConfig {
            num_iterations: 6,
            ..AlsConfig::default()
        },
    )));
    methods.push(Box::new(Popularity::from_training(&training)));

    for m in &methods {
        let top = m.recommend_actions(cart, 5);
        let names: Vec<String> = top.iter().map(|&a| fm.library.action_name(a)).collect();
        println!("{:>10}: {}", m.name(), names.join(", "));
    }

    // Show which recipes the best goal-based pick advances.
    let model = GoalModel::build(&fm.library)?;
    let breadth =
        GoalRecommender::from_library(&fm.library, Box::new(goalrec::core::strategies::Breadth))?;
    if let Some(first) = breadth.recommend_actions(cart, 1).first() {
        let goals = model.goal_space_of_action(*first);
        println!(
            "\n'{}' contributes to {} recipes reachable from this cart",
            fm.library.action_name(*first),
            goals.len()
        );
    }
    Ok(())
}
