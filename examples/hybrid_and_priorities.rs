//! Extensions tour: goal priorities, hybrid fusion, explanations, and
//! live library updates — the features layered on top of the paper's
//! model (DESIGN.md §2, extension rows).
//!
//! Run with: `cargo run --example hybrid_and_priorities`

use goalrec::core::{
    explain, Activity, DynamicGoalModel, FusionRule, GoalRecommender, GoalWeights, Hybrid,
    LibraryBuilder, Recommender, WeightedBreadth,
};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small life-goal library.
    let mut b = LibraryBuilder::new();
    b.add_impl("lose weight", ["join gym", "drink water", "cut sugar"])?;
    b.add_impl("lose weight", ["start jogging", "cook at home"])?;
    b.add_impl(
        "save money",
        ["cook at home", "track expenses", "cut subscriptions"],
    )?;
    b.add_impl(
        "learn spanish",
        ["enroll class", "watch films", "read novels"],
    )?;
    let lib = b.build()?;
    let model = Arc::new(goalrec::core::GoalModel::build(&lib)?);

    let me = Activity::from_actions([lib.action_id("cook at home").unwrap()]);
    println!("activity: cook at home\n");

    // 1. Plain Breadth treats both reachable goals equally.
    let plain = GoalRecommender::new(Arc::clone(&model), Box::new(goalrec::core::Breadth));
    show(&lib, "Breadth", &plain.recommend(&me, 4));

    // 2. Goal priorities: this user cares mostly about money.
    let weights = GoalWeights::new().with(lib.goal_id("save money").unwrap(), 5.0);
    let weighted =
        GoalRecommender::new(Arc::clone(&model), Box::new(WeightedBreadth::new(weights)));
    show(&lib, "WBreadth(save money ×5)", &weighted.recommend(&me, 4));

    // 3. Hybrid: fuse Breadth with Best Match via reciprocal-rank fusion
    //    (the paper's future-work direction, §7).
    let hybrid = Hybrid::uniform(
        vec![
            Box::new(plain.clone()) as Box<dyn Recommender>,
            Box::new(GoalRecommender::new(
                Arc::clone(&model),
                Box::new(goalrec::core::BestMatch::default()),
            )),
        ],
        FusionRule::ReciprocalRank,
    );
    show(&lib, "Hybrid(Breadth+BestMatch)", &hybrid.recommend(&me, 4));

    // 4. Explanations for the top weighted pick.
    if let Some(top) = weighted.recommend(&me, 1).first() {
        println!("\nwhy '{}'?", lib.action_name(top.action));
        for j in explain(&model, &me, top.action, 3).justifications {
            println!(
                "  {} {:.0}% → {:.0}%",
                lib.goal_name(j.goal),
                j.completeness_before * 100.0,
                j.completeness_after * 100.0
            );
        }
    }

    // 5. Live updates: a new implementation arrives, recompile, re-serve.
    let mut dynamic = DynamicGoalModel::from_library(&lib)?;
    let new_goal = lib.goal_id("save money").unwrap();
    dynamic.add_implementation(
        new_goal,
        vec![
            lib.action_id("cook at home").unwrap(),
            lib.action_id("cut sugar").unwrap(), // shared with lose-weight
        ],
    )?;
    let refreshed = GoalRecommender::new(
        Arc::new(dynamic.compile()?),
        Box::new(goalrec::core::Breadth),
    );
    println!("\nafter adding a new save-money implementation:");
    show(&lib, "Breadth (updated)", &refreshed.recommend(&me, 4));
    Ok(())
}

fn show(lib: &goalrec::core::GoalLibrary, label: &str, recs: &[goalrec::core::Scored]) {
    let names: Vec<String> = recs
        .iter()
        .map(|s| format!("{} ({:.2})", lib.action_name(s.action), s.score))
        .collect();
    println!("{label:>28}: {}", names.join(", "));
}
