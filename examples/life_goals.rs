//! Life-goal scenario (§6 dataset (b)): generate the synthetic 43Things
//! world, hide 70 % of a user's activity (the paper's protocol), and watch
//! the goal-based strategies recover the hidden actions and advance the
//! user's declared goals.
//!
//! Run with: `cargo run --release --example life_goals`

use goalrec::core::{GoalModel, GoalRecommender, Recommender};
use goalrec::datasets::{hide_split, FortyThings, FortyThingsConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ft = FortyThings::generate(&FortyThingsConfig::test_scale());
    println!(
        "generated 43Things world: {} implementations, {} goals, {} actions, {} users\n",
        ft.library.len(),
        ft.library.num_goals(),
        ft.library.num_actions(),
        ft.full_activities.len()
    );

    // Pick a user pursuing several goals.
    let user = ft
        .user_goals
        .iter()
        .position(|g| g.len() >= 3)
        .expect("some user pursues 3+ goals");
    let goals = &ft.user_goals[user];
    println!(
        "user #{user} pursues {} goals: {}",
        goals.len(),
        goals
            .iter()
            .map(|g| ft.library.goal_name(*g))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Hide 70 % of everything the user did (§6 evaluation protocol).
    let mut rng = StdRng::seed_from_u64(7);
    let split = hide_split(&ft.full_activities[user], 0.3, &mut rng);
    println!(
        "full activity: {} actions → visible {} / hidden {}\n",
        ft.full_activities[user].len(),
        split.visible.len(),
        split.hidden.len()
    );

    let model = Arc::new(GoalModel::build(&ft.library)?);
    for rec in GoalRecommender::all_strategies(Arc::clone(&model)) {
        let top = rec.recommend_actions(&split.visible, 10);
        let hits = top.iter().filter(|a| split.is_hidden(**a)).count();
        println!(
            "{:>10}: {}/{} recommendations are actions the user actually performed",
            rec.name(),
            hits,
            top.len()
        );
    }

    // Goal completeness before vs after following Focus_cmp (usefulness,
    // §6.1.1 C.1.3).
    let focus = GoalRecommender::new(
        Arc::clone(&model),
        Box::new(goalrec::core::Focus::new(
            goalrec::core::FocusVariant::Completeness,
        )),
    );
    let recommended = focus.recommend_actions(&split.visible, 10);
    let extended = split.visible.extended(recommended.iter().copied());
    println!("\ngoal completeness before → after following Focus_cmp:");
    for g in goals {
        let before = model.goal_completeness(*g, split.visible.raw());
        let after = model.goal_completeness(*g, extended.raw());
        println!(
            "  {:<10} {:.0}% → {:.0}%",
            ft.library.goal_name(*g),
            before * 100.0,
            after * 100.0
        );
    }
    Ok(())
}
