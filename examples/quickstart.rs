//! Quickstart: the paper's introductory scenario.
//!
//! A supermarket customer has potatoes and carrots in the cart. A
//! content-based system would push more vegetables; collaborative
//! filtering would push whatever similar customers bought. The goal-based
//! recommender instead asks: *which recipes could this cart be building
//! towards, and which missing ingredients advance them?*
//!
//! Run with: `cargo run --example quickstart`

use goalrec::core::{
    strategies::{BestMatch, Breadth, Focus, FocusVariant},
    Activity, GoalRecommender, LibraryBuilder, Recommender,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The goal implementation library: recipes and their ingredients.
    let mut builder = LibraryBuilder::new();
    builder.add_impl(
        "olivier (russian) salad",
        ["potatoes", "carrots", "pickles", "peas", "mayonnaise"],
    )?;
    builder.add_impl("mashed potatoes", ["potatoes", "butter", "milk", "nutmeg"])?;
    builder.add_impl("pan-fried carrots", ["carrots", "butter", "nutmeg"])?;
    builder.add_impl("greek salad", ["tomatoes", "cucumber", "feta", "olives"])?;
    builder.add_impl(
        "carrot cake",
        ["carrots", "flour", "eggs", "sugar", "nutmeg"],
    )?;
    let library = builder.build()?;

    // The customer's cart.
    let cart = Activity::from_actions([
        library.action_id("potatoes").expect("known product"),
        library.action_id("carrots").expect("known product"),
    ]);
    println!("cart: potatoes, carrots\n");

    // Each strategy implements a different policy (§5 of the paper).
    let strategies: Vec<Box<dyn goalrec::core::Strategy>> = vec![
        Box::new(Focus::new(FocusVariant::Completeness)),
        Box::new(Focus::new(FocusVariant::Closeness)),
        Box::new(Breadth),
        Box::new(BestMatch::default()),
    ];
    for strategy in strategies {
        let name = strategy.name();
        let rec = GoalRecommender::from_library(&library, strategy)?;
        let top = rec.recommend(&cart, 4);
        let names: Vec<String> = top
            .iter()
            .map(|s| format!("{} ({:.2})", library.action_name(s.action), s.score))
            .collect();
        println!("{name:>10}: {}", names.join(", "));
    }

    // Why these? nutmeg serves mashed potatoes, pan-fried carrots AND
    // carrot cake — all goals the cart gives evidence for. Tomatoes never
    // appear: the greek salad shares nothing with this cart.
    Ok(())
}
