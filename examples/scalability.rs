//! Miniature Figure 7: per-request latency of the four goal-based
//! strategies as the library grows and as connectivity grows.
//!
//! The full sweep (millions of implementations) runs via
//! `cargo run --release -p goalrec-bench --bin repro -- figure7 --scale paper`;
//! this example keeps the same harness at example-friendly sizes.
//!
//! Run with: `cargo run --release --example scalability`

use goalrec::eval::experiments::figure7::{run, Figure7Config};

fn main() {
    let cfg = Figure7Config {
        sizes: vec![2_000, 10_000, 40_000],
        connectivity_actions: vec![10_000, 2_000, 500],
        connectivity_impls: 10_000,
        num_actions: 3_000,
        impl_len: 8,
        activity_len: 10,
        queries: 20,
        k: 10,
        seed: 1,
    };
    println!("{}", run(&cfg));
    println!(
        "expected shape (paper §6.2): Breadth ≪ Best Match; Focus_cl ≤ Focus_cmp;\n\
         latency tracks connectivity, not the raw number of implementations."
    );
}
