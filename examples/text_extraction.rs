//! From free text to recommendations: the §3 pipeline.
//!
//! 43Things-style success stories are plain text. The textmine crate
//! segments them, anchors each segment on an action verb, normalises the
//! phrase with a Porter stemmer, and assembles a goal implementation
//! library — which the core recommender then consumes directly.
//!
//! Run with: `cargo run --example text_extraction`

use goalrec::core::{strategies::Breadth, Activity, GoalRecommender, Recommender};
use goalrec::textmine::{build_library, ActionExtractor, Story};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stories = vec![
        Story::new(
            "lose weight",
            "Here is what worked for me.\n\
             1. join a gym\n\
             2. stop eating at restaurants\n\
             3. drink more water\n\
             4. track calories daily",
        ),
        Story::new(
            "lose weight",
            "I started jogging every morning. I quit soda. \
             Then I joined a gym near my office.",
        ),
        Story::new(
            "get fit",
            "I joined a gym. I started jogging. I lifted weights twice weekly.",
        ),
        Story::new(
            "learn english",
            "- enroll in an evening class\n\
             - watch films without subtitles\n\
             - read one novel per month",
        ),
        Story::new("be happy", "The weather was lovely that summer."),
    ];

    let extractor = ActionExtractor::default();
    let build = build_library(&stories, &extractor)?;
    let lib = &build.library;
    println!(
        "extracted {} implementations, {} goals, {} distinct actions ({} story skipped)\n",
        lib.len(),
        lib.num_goals(),
        lib.num_actions(),
        build.skipped.len()
    );
    for imp in lib.implementations() {
        let acts: Vec<String> = imp.actions.iter().map(|a| lib.action_name(*a)).collect();
        println!("  {:<14} ← [{}]", lib.goal_name(imp.goal), acts.join(", "));
    }

    // A user who joined a gym: which goals does that hint at, and what
    // should they do next?
    let joined = lib.action_id("join gym").expect("extracted action");
    let user = Activity::from_actions([joined]);
    let rec = GoalRecommender::from_library(lib, Box::new(Breadth))?;
    let next: Vec<String> = rec
        .recommend_actions(&user, 4)
        .iter()
        .map(|&a| lib.action_name(a))
        .collect();
    println!("\nuser has done: join gym");
    println!("recommended next: {}", next.join(", "));
    Ok(())
}
