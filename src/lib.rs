//! # goalrec — goal-based recommendations
//!
//! Umbrella crate for the reproduction of *"Modeling and Exploiting Goal
//! and Action Associations for Recommendations"* (Papadimitriou,
//! Velegrakis, Koutrika — EDBT 2018). It re-exports the workspace crates
//! under one roof and hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`).
//!
//! * [`core`] — the association-based goal model and the Focus / Breadth /
//!   Best Match strategies.
//! * [`baselines`] — CF-kNN, ALS-WR, content-based, Apriori, popularity.
//! * [`datasets`] — synthetic FoodMart and 43Things generators, the
//!   hide-split protocol, dataset IO.
//! * [`textmine`] — free-text goal-implementation extraction.
//! * [`eval`] — metrics and the per-table/figure experiments of §6.
//!
//! See `README.md` for a guided tour and `DESIGN.md` for the system
//! inventory; `cargo run --release -p goalrec-bench --bin repro`
//! regenerates every table and figure.

#![warn(missing_docs)]

pub use goalrec_baselines as baselines;
pub use goalrec_core as core;
pub use goalrec_datasets as datasets;
pub use goalrec_eval as eval;
pub use goalrec_textmine as textmine;
