//! Contract tests: every recommender in the workspace — the four
//! goal-based strategies and all five baselines — honours the
//! [`Recommender`] contract on both generated datasets:
//! deterministic output, never recommending performed actions, respecting
//! `k`, and valid action ids.

use goalrec::baselines::{
    AlsConfig, AlsWr, Apriori, AprioriConfig, CfKnn, ContentBased, ItemFeatures, Popularity,
    TrainingSet,
};
use goalrec::core::{Activity, GoalModel, GoalRecommender, Recommender};
use goalrec::datasets::{FoodMart, FoodMartConfig, FortyThings, FortyThingsConfig};
use std::sync::Arc;

fn foodmart_methods() -> (Vec<Box<dyn Recommender>>, Vec<Activity>, usize) {
    let fm = FoodMart::generate(&FoodMartConfig::test_scale());
    let n_actions = fm.library.num_actions();
    let model = Arc::new(GoalModel::build(&fm.library).unwrap());
    let training = TrainingSet::new(fm.carts.clone(), n_actions);
    let mut methods: Vec<Box<dyn Recommender>> = GoalRecommender::all_strategies(model)
        .into_iter()
        .map(|r| Box::new(r) as Box<dyn Recommender>)
        .collect();
    methods.push(Box::new(ContentBased::new(ItemFeatures::new(
        fm.product_feature_vectors(),
    ))));
    methods.push(Box::new(CfKnn::tanimoto(training.clone(), 10)));
    methods.push(Box::new(AlsWr::train(
        &training,
        AlsConfig {
            num_factors: 8,
            num_iterations: 3,
            ..AlsConfig::default()
        },
    )));
    methods.push(Box::new(Apriori::mine(
        &training,
        &AprioriConfig {
            min_support: 3,
            min_confidence: 0.2,
            max_itemset_size: 2,
        },
    )));
    methods.push(Box::new(Popularity::from_training(&training)));
    let inputs = fm.carts.into_iter().take(25).collect();
    (methods, inputs, n_actions)
}

fn fortythree_methods() -> (Vec<Box<dyn Recommender>>, Vec<Activity>, usize) {
    let ft = FortyThings::generate(&FortyThingsConfig::test_scale());
    let n_actions = ft.library.num_actions();
    let model = Arc::new(GoalModel::build(&ft.library).unwrap());
    let training = TrainingSet::new(ft.full_activities.clone(), n_actions);
    let mut methods: Vec<Box<dyn Recommender>> = GoalRecommender::all_strategies(model)
        .into_iter()
        .map(|r| Box::new(r) as Box<dyn Recommender>)
        .collect();
    methods.push(Box::new(CfKnn::tanimoto(training.clone(), 10)));
    methods.push(Box::new(Popularity::from_training(&training)));
    let inputs = ft.full_activities.into_iter().take(25).collect();
    (methods, inputs, n_actions)
}

fn check_contract(methods: &[Box<dyn Recommender>], inputs: &[Activity], n_actions: usize) {
    for m in methods {
        for h in inputs {
            let a = m.recommend(h, 10);
            let b = m.recommend(h, 10);
            assert_eq!(a, b, "{} must be deterministic", m.name());
            assert!(a.len() <= 10, "{} exceeded k", m.name());
            for s in &a {
                assert!(!h.contains(s.action), "{} recommended performed", m.name());
                assert!(
                    s.action.index() < n_actions,
                    "{} produced out-of-range id",
                    m.name()
                );
                assert!(!s.score.is_nan(), "{} produced NaN score", m.name());
            }
            // Scores are non-increasing down the list.
            for w in a.windows(2) {
                assert!(
                    w[0].score >= w[1].score,
                    "{} scores out of order: {:?}",
                    m.name(),
                    w
                );
            }
            // Prefix property: top-3 is the head of top-10.
            let top3 = m.recommend(h, 3);
            assert_eq!(&a[..a.len().min(3)], &top3[..], "{} prefix", m.name());
            // Zero-k and empty-activity edge cases.
            assert!(m.recommend(h, 0).is_empty());
        }
        assert!(m.recommend(&Activity::new(), 10).len() <= 10);
    }
}

#[test]
fn foodmart_contract() {
    let (methods, inputs, n) = foodmart_methods();
    assert_eq!(methods.len(), 9);
    check_contract(&methods, &inputs, n);
}

#[test]
fn fortythree_contract() {
    let (methods, inputs, n) = fortythree_methods();
    assert_eq!(methods.len(), 6);
    check_contract(&methods, &inputs, n);
}

#[test]
fn batch_matches_sequential_for_all_methods() {
    let (methods, inputs, _) = foodmart_methods();
    for m in &methods {
        let batched = goalrec::core::batch::recommend_batch(m.as_ref(), &inputs, 5);
        for (h, got) in inputs.iter().zip(&batched) {
            assert_eq!(got, &m.recommend(h, 5), "{} batch mismatch", m.name());
        }
    }
}
