//! Integration tests for the extension features: dynamic model ingestion,
//! hybrid fusion, goal priorities and explanations — exercised together
//! over generated datasets, the way a downstream application would.

use goalrec::core::{
    explain, Activity, DynamicGoalModel, FusionRule, GoalRecommender, GoalWeights, Hybrid,
    Recommender, WeightedBreadth,
};
use goalrec::datasets::{FortyThings, FortyThingsConfig};
use std::sync::Arc;

#[test]
fn dynamic_ingestion_converges_to_static_model() {
    let ft = FortyThings::generate(&FortyThingsConfig::test_scale());
    // Ingest the whole library one implementation at a time.
    let mut dm = DynamicGoalModel::new();
    for imp in ft.library.implementations() {
        dm.add_implementation(imp.goal, imp.actions.clone())
            .unwrap();
    }
    let dynamic_model = Arc::new(dm.compile().unwrap());
    let static_model = Arc::new(goalrec::core::GoalModel::build(&ft.library).unwrap());

    let dyn_rec = GoalRecommender::new(dynamic_model, Box::new(goalrec::core::Breadth));
    let stat_rec = GoalRecommender::new(static_model, Box::new(goalrec::core::Breadth));
    for h in ft.full_activities.iter().take(30) {
        assert_eq!(dyn_rec.recommend(h, 10), stat_rec.recommend(h, 10));
    }
}

#[test]
fn removing_an_implementation_removes_its_unique_recommendations() {
    let ft = FortyThings::generate(&FortyThingsConfig::test_scale());
    let mut dm = DynamicGoalModel::from_library(&ft.library).unwrap();

    // Take some user's chosen implementation and remove it; actions unique
    // to that implementation must stop being recommendable from it.
    let user = 0;
    let target = ft.user_impls[user][0];
    let before = dm.len();
    dm.remove_implementation(target).unwrap();
    assert_eq!(dm.len(), before - 1);
    // Goal space derived from the removed impl's own actions no longer
    // includes contributions through it.
    let removed_actions = &ft.library.implementations()[target.index()].actions;
    let raw: Vec<u32> = removed_actions.iter().map(|a| a.raw()).collect();
    let gs = dm.goal_space(&raw);
    // The goal may survive via other implementations, but the epoch moved
    // and compile still works.
    assert!(dm.epoch() > 0);
    let _ = gs;
    assert!(dm.compile().is_ok());
}

#[test]
fn hybrid_of_goal_strategies_stays_on_goal_structure() {
    let ft = FortyThings::generate(&FortyThingsConfig::test_scale());
    let model = Arc::new(goalrec::core::GoalModel::build(&ft.library).unwrap());
    let hybrid = Hybrid::uniform(
        GoalRecommender::all_strategies(Arc::clone(&model))
            .into_iter()
            .map(|r| Box::new(r) as Box<dyn Recommender>)
            .collect(),
        FusionRule::ReciprocalRank,
    );
    for (u, h) in ft.full_activities.iter().take(20).enumerate() {
        let fused = hybrid.recommend(h, 10);
        assert!(!fused.is_empty(), "user {u} got an empty hybrid list");
        for s in &fused {
            assert!(!h.contains(s.action));
        }
        // Deterministic.
        assert_eq!(fused, hybrid.recommend(h, 10));
    }
}

#[test]
fn goal_priorities_steer_recommendations_toward_the_boosted_goal() {
    let ft = FortyThings::generate(&FortyThingsConfig::test_scale());
    let model = Arc::new(goalrec::core::GoalModel::build(&ft.library).unwrap());

    // A user with several goals: boost one of them heavily and check the
    // top recommendations shift toward actions of that goal.
    let user = ft
        .user_goals
        .iter()
        .position(|g| g.len() >= 3)
        .expect("multi-goal user");
    let boosted = ft.user_goals[user][2];
    let h = &ft.full_activities[user];
    // Use the visible prefix so there is something left to recommend.
    let visible = Activity::from_raw(h.raw().iter().copied().take(h.len() / 3));

    let weights = GoalWeights::new().with(boosted, 50.0);
    let weighted =
        GoalRecommender::new(Arc::clone(&model), Box::new(WeightedBreadth::new(weights)));
    let top = weighted.recommend_actions(&visible, 5);
    if top.is_empty() {
        return; // degenerate split: nothing recommendable
    }
    // The top recommendation must contribute to the boosted goal if the
    // boosted goal is in the visible activity's goal space at all.
    let gs = model.goal_space(visible.raw());
    if gs.binary_search(&boosted.raw()).is_ok() {
        let contributes = model.goal_impls(boosted).iter().any(|&p| {
            model
                .impl_actions(goalrec::core::ImplId::new(p))
                .binary_search(&top[0].raw())
                .is_ok()
        });
        assert!(contributes, "top pick does not serve the boosted goal");
    }
}

#[test]
fn explanations_cover_every_goal_based_recommendation() {
    let ft = FortyThings::generate(&FortyThingsConfig::test_scale());
    let model = Arc::new(goalrec::core::GoalModel::build(&ft.library).unwrap());
    let rec = GoalRecommender::new(Arc::clone(&model), Box::new(goalrec::core::Breadth));
    for h in ft.full_activities.iter().take(20) {
        let visible = Activity::from_raw(h.raw().iter().copied().take(h.len().max(2) / 2));
        for a in rec.recommend_actions(&visible, 5) {
            let ex = explain(&model, &visible, a, 0);
            assert!(
                !ex.justifications.is_empty(),
                "Breadth recommendation {a} has no goal justification"
            );
            for j in &ex.justifications {
                assert!(j.completeness_after >= j.completeness_before);
                assert!(j.completeness_after <= 1.0 + 1e-12);
            }
        }
    }
}
