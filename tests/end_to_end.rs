//! End-to-end pipeline tests: dataset generation → hide split → model →
//! recommendation → metric aggregation, exactly the path the §6
//! experiments take, asserting the qualitative invariants that must hold
//! at any scale.

use goalrec::core::{GoalModel, GoalRecommender, Recommender};
use goalrec::datasets::{hide_split_all, FortyThings, FortyThingsConfig};
use goalrec::eval::metrics::{completeness::usefulness, ranking, tpr::avg_tpr};
use std::sync::Arc;

#[test]
fn goal_based_recovery_beats_random_guessing() {
    let ft = FortyThings::generate(&FortyThingsConfig::test_scale());
    let splits = hide_split_all(&ft.full_activities, 0.3, 1);
    let inputs: Vec<_> = splits.iter().map(|s| s.visible.clone()).collect();
    let truths: Vec<_> = splits.iter().map(|s| s.hidden.clone()).collect();

    let model = Arc::new(GoalModel::build(&ft.library).unwrap());
    let rec = GoalRecommender::new(
        Arc::clone(&model),
        Box::new(goalrec::core::Focus::new(
            goalrec::core::FocusVariant::Completeness,
        )),
    );
    let lists = goalrec::core::batch::recommend_batch_actions(&rec, &inputs, 10);
    let tpr = avg_tpr(&lists, &truths);

    // Random top-10 over the action universe would land around
    // |hidden| / |actions| ≈ 18/180 = 10 %; the goal-based method reads
    // the implementation structure and must do far better.
    assert!(tpr > 0.25, "Focus_cmp TPR only {tpr}");
}

#[test]
fn recommendations_strictly_increase_goal_completeness() {
    let ft = FortyThings::generate(&FortyThingsConfig::test_scale());
    let splits = hide_split_all(&ft.full_activities, 0.3, 2);
    let inputs: Vec<_> = splits.iter().map(|s| s.visible.clone()).collect();
    let goals: Vec<Vec<u32>> = ft
        .user_goals
        .iter()
        .map(|gs| {
            let mut ids: Vec<u32> = gs.iter().map(|g| g.raw()).collect();
            ids.sort_unstable();
            ids
        })
        .collect();

    let model = Arc::new(GoalModel::build(&ft.library).unwrap());
    let rec = GoalRecommender::new(Arc::clone(&model), Box::new(goalrec::core::Breadth));
    let lists = goalrec::core::batch::recommend_batch_actions(&rec, &inputs, 10);

    let before = usefulness(&model, &inputs, &vec![Vec::new(); inputs.len()], &goals);
    let after = usefulness(&model, &inputs, &lists, &goals);
    assert!(
        after.avg_avg > before.avg_avg + 0.05,
        "completeness {} → {}",
        before.avg_avg,
        after.avg_avg
    );
}

#[test]
fn ranking_metrics_agree_with_tpr_ordering() {
    // NDCG/precision and the paper's TPR framing must order two methods
    // the same way when the gap is wide (goal-based vs popularity).
    let ft = FortyThings::generate(&FortyThingsConfig::test_scale());
    let splits = hide_split_all(&ft.full_activities, 0.3, 3);
    let inputs: Vec<_> = splits.iter().map(|s| s.visible.clone()).collect();
    let truths: Vec<_> = splits.iter().map(|s| s.hidden.clone()).collect();

    let model = Arc::new(GoalModel::build(&ft.library).unwrap());
    let goal = GoalRecommender::new(Arc::clone(&model), Box::new(goalrec::core::Breadth));
    let goal_lists = goalrec::core::batch::recommend_batch_actions(&goal, &inputs, 10);

    let training = goalrec::baselines::TrainingSet::new(inputs.clone(), ft.library.num_actions());
    let pop = goalrec::baselines::Popularity::from_training(&training);
    let pop_lists = goalrec::core::batch::recommend_batch_actions(&pop, &inputs, 10);

    let goal_tpr = avg_tpr(&goal_lists, &truths);
    let pop_tpr = avg_tpr(&pop_lists, &truths);
    assert!(goal_tpr > pop_tpr, "goal {goal_tpr} vs pop {pop_tpr}");

    let ndcg = |lists: &[Vec<goalrec::core::ActionId>]| {
        ranking::mean_over_queries(lists, &truths, |l, t| ranking::ndcg_at_k(l, t, 10))
    };
    assert!(ndcg(&goal_lists) > ndcg(&pop_lists));

    let prec = |lists: &[Vec<goalrec::core::ActionId>]| {
        ranking::mean_over_queries(lists, &truths, |l, t| ranking::precision_at_k(l, t, 10))
    };
    assert!(prec(&goal_lists) > prec(&pop_lists));
}

#[test]
fn model_rebuild_roundtrip_through_disk() {
    // Generate → persist → reload → identical recommendations.
    let ft = FortyThings::generate(&FortyThingsConfig::test_scale());
    let dir = std::env::temp_dir().join("goalrec-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ft-library.jsonl");
    goalrec::datasets::io::write_library_jsonl(&ft.library, &path).unwrap();
    let reloaded = goalrec::datasets::io::read_library_jsonl(
        &path,
        ft.library.num_actions() as u32,
        ft.library.num_goals() as u32,
    )
    .unwrap();

    let rec_a =
        GoalRecommender::from_library(&ft.library, Box::new(goalrec::core::Breadth)).unwrap();
    let rec_b = GoalRecommender::from_library(&reloaded, Box::new(goalrec::core::Breadth)).unwrap();
    for h in ft.full_activities.iter().take(20) {
        assert_eq!(rec_a.recommend(h, 10), rec_b.recommend(h, 10));
    }
}
