//! Integration tests pinning the paper's own worked examples
//! (Example 3.2, Example 4.3, and the §5.3 profile example) through the
//! public API of the umbrella crate.

use goalrec::core::{
    profile, strategies::BestMatch, Activity, GoalModel, GoalRecommender, LibraryBuilder,
    Recommender,
};

/// Figure 1 / Example 3.2: five outfits over six items, goals
/// g1 (meeting friends), g2 (going to the office), g3 (be warm),
/// g5 (hiking).
fn example_library() -> goalrec::core::GoalLibrary {
    let mut b = LibraryBuilder::new();
    b.add_impl("meeting friends", ["a1", "a2"]).unwrap();
    b.add_impl("meeting friends", ["a1", "a3"]).unwrap();
    b.add_impl("going to the office", ["a1", "a4", "a5"])
        .unwrap();
    b.add_impl("be warm", ["a4", "a6"]).unwrap();
    b.add_impl("hiking", ["a1", "a2", "a6"]).unwrap();
    b.build().unwrap()
}

#[test]
fn example_4_3_spaces_of_a1() {
    let lib = example_library();
    let model = GoalModel::build(&lib).unwrap();
    let a1 = lib.action_id("a1").unwrap();

    // IS(a1) = {p1, p2, p3, p5} — implementation ids 0, 1, 2, 4.
    assert_eq!(model.action_impls(a1), &[0, 1, 2, 4]);

    // GS(a1) = {g1, g2, g5}.
    let goals: Vec<String> = model
        .goal_space_of_action(a1)
        .into_iter()
        .map(|g| lib.goal_name(goalrec::core::GoalId::new(g)))
        .collect();
    assert_eq!(
        goals,
        vec!["meeting friends", "going to the office", "hiking"]
    );

    // AS(a1) = {a2, a3, a4, a5, a6}.
    let acts: Vec<String> = model
        .action_space_of_action(a1)
        .into_iter()
        .map(|a| lib.action_name(goalrec::core::ActionId::new(a)))
        .collect();
    assert_eq!(acts, vec!["a2", "a3", "a4", "a5", "a6"]);
}

#[test]
fn section_5_3_profile_of_a2_a3() {
    // H = {a2, a3}: profile counts g1 → 2 (p1 via a2, p2 via a3),
    // g5 → 1 (p5 via a2).
    let lib = example_library();
    let model = GoalModel::build(&lib).unwrap();
    let h: Vec<u32> = ["a2", "a3"]
        .iter()
        .map(|n| lib.action_id(n).unwrap().raw())
        .collect();
    let (space, prof) = profile::goal_space_and_profile(&model, &h);
    assert_eq!(space.len(), 2);
    let g1 = lib.goal_id("meeting friends").unwrap();
    let g5 = lib.goal_id("hiking").unwrap();
    assert_eq!(prof.get(g1), Some(2.0));
    assert_eq!(prof.get(g5), Some(1.0));
}

#[test]
fn section_5_3_best_match_ranks_a1_closest() {
    // The paper argues a1 is closer to the H = {a2, a3} profile than other
    // candidates because its contribution pattern (2 × g1, 1 × g5 within
    // the space) mirrors the user's effort.
    let lib = example_library();
    let rec = GoalRecommender::from_library(&lib, Box::new(BestMatch::default())).unwrap();
    let h = Activity::from_actions([lib.action_id("a2").unwrap(), lib.action_id("a3").unwrap()]);
    let top = rec.recommend_actions(&h, 5);
    assert_eq!(lib.action_name(top[0]), "a1");
}

#[test]
fn intro_scenario_recommends_pickles_and_nutmeg() {
    // §1: the cart {potatoes, carrots} should surface pickles (olivier
    // salad) and nutmeg (mashed potatoes / pan-fried carrots) — items no
    // similarity-based method would justify.
    let mut b = LibraryBuilder::new();
    b.add_impl("olivier salad", ["potatoes", "carrots", "pickles"])
        .unwrap();
    b.add_impl("mashed potatoes", ["potatoes", "nutmeg"])
        .unwrap();
    b.add_impl("pan-fried carrots", ["carrots", "nutmeg"])
        .unwrap();
    let lib = b.build().unwrap();
    let cart = Activity::from_actions([
        lib.action_id("potatoes").unwrap(),
        lib.action_id("carrots").unwrap(),
    ]);

    let rec = GoalRecommender::from_library(&lib, Box::new(goalrec::core::Breadth)).unwrap();
    let names: Vec<String> = rec
        .recommend_actions(&cart, 2)
        .iter()
        .map(|&a| lib.action_name(a))
        .collect();
    assert!(names.contains(&"pickles".to_owned()), "got {names:?}");
    assert!(names.contains(&"nutmeg".to_owned()), "got {names:?}");
}
