//! Integration: free-text corpus → extraction → library → model →
//! recommendation, mirroring how the authors produced the 43Things
//! dataset (§3).

use goalrec::core::{Activity, GoalRecommender, Recommender};
use goalrec::textmine::{build_library, ActionExtractor, Story};

fn corpus() -> Vec<Story> {
    vec![
        Story::new(
            "lose weight",
            "1. join a gym\n2. stop eating at restaurants\n3. drink more water",
        ),
        Story::new(
            "lose weight",
            "I quit soda. I started jogging. I joined a gym.",
        ),
        Story::new(
            "get fit",
            "I joined a gym. I started jogging. I lifted weights.",
        ),
        Story::new(
            "save money",
            "- stop eating at restaurants\n- track expenses\n- cut subscriptions",
        ),
        Story::new("save money", "I sold my car. I started cooking at home."),
        Story::new(
            "learn spanish",
            "I enrolled in a class. I watched films in spanish.",
        ),
    ]
}

#[test]
fn extracted_library_has_cross_goal_action_sharing() {
    let build = build_library(&corpus(), &ActionExtractor::default()).unwrap();
    let lib = &build.library;
    assert!(build.skipped.is_empty());
    assert_eq!(lib.len(), 6);
    assert_eq!(lib.num_goals(), 4);

    // "stop eat restaur" serves both lose-weight and save-money — the
    // cross-goal association that makes goal-based recommendation
    // interesting.
    let shared = lib.action_id("stop eat restaur").unwrap();
    let goals: std::collections::HashSet<_> = lib
        .implementations()
        .iter()
        .filter(|i| i.actions.contains(&shared))
        .map(|i| i.goal)
        .collect();
    assert_eq!(goals.len(), 2);
}

#[test]
fn recommendations_respect_goal_families() {
    let build = build_library(&corpus(), &ActionExtractor::default()).unwrap();
    let lib = &build.library;
    let rec = GoalRecommender::from_library(lib, Box::new(goalrec::core::Breadth)).unwrap();

    // A user who joined a gym gets fitness actions, not spanish classes.
    let h = Activity::from_actions([lib.action_id("join gym").unwrap()]);
    let names: Vec<String> = rec
        .recommend_actions(&h, 5)
        .iter()
        .map(|&a| lib.action_name(a))
        .collect();
    assert!(!names.is_empty());
    assert!(
        !names
            .iter()
            .any(|n| n.contains("spanish") || n.contains("enrol")),
        "unrelated goal leaked into {names:?}"
    );
}

#[test]
fn cross_goal_action_bridges_recommendations() {
    let build = build_library(&corpus(), &ActionExtractor::default()).unwrap();
    let lib = &build.library;
    let rec = GoalRecommender::from_library(lib, Box::new(goalrec::core::Breadth)).unwrap();

    // "stop eat restaur" gives evidence for BOTH lose-weight and
    // save-money, so recommendations may draw from both families.
    let h = Activity::from_actions([lib.action_id("stop eat restaur").unwrap()]);
    let names: Vec<String> = rec
        .recommend_actions(&h, 8)
        .iter()
        .map(|&a| lib.action_name(a))
        .collect();
    let has_weight = names
        .iter()
        .any(|n| n.contains("gym") || n.contains("water"));
    let has_money = names
        .iter()
        .any(|n| n.contains("track expens") || n.contains("cut subscript"));
    assert!(
        has_weight && has_money,
        "expected actions from both goal families, got {names:?}"
    );
}

#[test]
fn stemming_unifies_story_variants() {
    // Same action phrased differently across stories maps to one id.
    let stories = vec![
        Story::new("g1", "I stopped eating at restaurants."),
        Story::new("g2", "stop eating at the restaurant"),
    ];
    let build = build_library(&stories, &ActionExtractor::default()).unwrap();
    assert_eq!(build.library.num_actions(), 1);
}
