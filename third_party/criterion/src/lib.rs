//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], `bench_function` /
//! `bench_with_input`, `sample_size`, [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with a
//! straightforward timing loop: a warm-up pass, then `sample_size`
//! samples whose median per-iteration time is printed. No statistical
//! analysis, HTML reports, or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 30,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.default_sample_size, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (reporting is per-benchmark, so this is a no-op).
    pub fn finish(self) {}
}

/// Identifier for a benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A bare parameter label.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    /// The rendered label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Hands the routine under test to the timing loop.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    warmed_up: bool,
}

impl Bencher {
    /// Times `routine`, recording per-iteration cost.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.warmed_up {
            // Warm-up: run until ~50ms elapse to settle caches/branch
            // predictors, and size sample batches so one sample is ~10ms.
            let warm_start = Instant::now();
            let mut warm_iters = 0u64;
            while warm_start.elapsed() < Duration::from_millis(50) {
                black_box(routine());
                warm_iters += 1;
            }
            let per_iter = warm_start.elapsed().as_nanos() / warm_iters.max(1) as u128;
            self.iters_per_sample = ((10_000_000 / per_iter.max(1)) as u64).clamp(1, 100_000);
            self.warmed_up = true;
        }
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        warmed_up: false,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    if b.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let (lo, hi) = (b.samples[0], b.samples[b.samples.len() - 1]);
    println!(
        "{label:<50} median {} (min {}, max {}, {} samples)",
        fmt_duration(median),
        fmt_duration(lo),
        fmt_duration(hi),
        b.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions under one group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("demo");
        group.sample_size(5);
        let mut calls = 0u64;
        group.bench_function("add", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("mul", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 7))
        });
        group.finish();
        assert!(calls > 0);
    }
}
