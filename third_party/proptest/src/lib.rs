//! Offline stand-in for the `proptest` crate.
//!
//! Random-case property testing with the API subset this workspace uses:
//! the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! [`Strategy`] implemented for numeric ranges, tuples, and
//! character-class string patterns, the `prop_map` combinator,
//! [`prop_oneof!`], [`collection::vec`] and [`collection::btree_set`],
//! and the `prop_assert*` macros.
//!
//! Differences from the real crate: failing cases are **not shrunk**
//! (the panic message carries the case number and seed instead), and
//! `.proptest-regressions` files are ignored. Case generation is
//! deterministic per test name, so failures reproduce run to run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps debug-build suites quick
        // while still exercising the space.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Draws from `self`, then from the strategy `f` builds from that draw.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Boxes a strategy behind `dyn Strategy` (used by [`prop_oneof!`]).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// The `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// The `prop_flat_map` adapter.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A0: 0),
    (A0: 0, A1: 1),
    (A0: 0, A1: 1, A2: 2),
    (A0: 0, A1: 1, A2: 2, A3: 3),
    (A0: 0, A1: 1, A2: 2, A3: 3, A4: 4),
    (A0: 0, A1: 1, A2: 2, A3: 3, A4: 4, A5: 5),
    (A0: 0, A1: 1, A2: 2, A3: 3, A4: 4, A5: 5, A6: 6),
    (A0: 0, A1: 1, A2: 2, A3: 3, A4: 4, A5: 5, A6: 6, A7: 7),
);

/// Character-class string pattern, e.g. `"[a-z]{1,15}"`.
///
/// Only the shape `[class]{min,max}` is supported (optionally `{n}`),
/// which covers the patterns the workspace uses.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let (chars, min, max) = parse_char_class_pattern(self);
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| chars[rng.gen_range(0..chars.len())])
            .collect()
    }
}

fn parse_char_class_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let inner = pat
        .strip_prefix('[')
        .and_then(|rest| rest.split_once(']'))
        .unwrap_or_else(|| panic!("unsupported string pattern `{pat}`: expected [class]{{m,n}}"));
    let (class, rep) = inner;
    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (lo, hi) = (cs[i], cs[i + 2]);
            assert!(lo <= hi, "bad char range in `{pat}`");
            for c in lo..=hi {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    assert!(!chars.is_empty(), "empty char class in `{pat}`");
    let rep = rep
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition in `{pat}`"));
    let (min, max) = match rep.split_once(',') {
        Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
        None => {
            let n = rep.trim().parse().unwrap();
            (n, n)
        }
    };
    (chars, min, max)
}

/// Weighted union of strategies with one output type.
pub struct OneOf<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u64,
}

impl<V> OneOf<V> {
    /// Builds from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let mut pick = rng.gen_range(0..self.total);
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted");
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Strategy for `Vec<T>` with random length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeSet<T>` with random cardinality in `size`.
    ///
    /// When the element space is smaller than the requested cardinality the
    /// set saturates (generation is attempt-bounded, matching the real
    /// crate's rejection behaviour).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 32 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    impl SizeRange {
        pub(crate) fn pick(&self, rng: &mut StdRng) -> usize {
            if self.min >= self.max_exclusive {
                self.min
            } else {
                rng.gen_range(self.min..self.max_exclusive)
            }
        }
    }
}

/// Collection size specification: an exact length or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_exclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_exclusive: *r.end() + 1,
        }
    }
}

/// Seeds one test case deterministically from the test name and index.
#[doc(hidden)]
pub fn __case_rng(test_name: &str, case: u32) -> StdRng {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    test_name.hash(&mut h);
    case.hash(&mut h);
    StdRng::seed_from_u64(h.finish())
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body runs
/// for `cases` random bindings (no shrinking on failure).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::__case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Weighted choice between strategies producing one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $( ($weight as u32, $crate::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $( (1u32, $crate::boxed($strat)) ),+
        ])
    };
}

/// The catch-all import surface of the real crate.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        boxed, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, OneOf, ProptestConfig,
        Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn collections_respect_size(
            v in collection::vec(0u32..100, 2..6),
            s in collection::btree_set(0u32..1000, 1..8),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(!s.is_empty() && s.len() < 8);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![3 => (0u32..5).prop_map(|v| v as u64), 1 => Just(99u64)]) {
            prop_assert!(x < 5 || x == 99);
        }

        #[test]
        fn string_patterns(word in "[a-z]{1,15}") {
            prop_assert!(!word.is_empty() && word.len() <= 15);
            prop_assert!(word.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn deterministic_cases() {
        let a = crate::__case_rng("t", 0);
        let b = crate::__case_rng("t", 0);
        let (mut a, mut b) = (a, b);
        use rand::Rng;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
