//! Offline stand-in for the `rand` crate.
//!
//! Provides the API subset this workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range` (half-open and inclusive integer/float ranges) and
//! `gen_bool` — backed by xoshiro256++ seeded through SplitMix64.
//!
//! The generator is deterministic and high-quality but produces a
//! *different stream* than the real `rand` crate's ChaCha12 `StdRng`;
//! synthetic datasets keep their statistical calibration but not their
//! exact contents.

use std::ops::{Range, RangeInclusive};

/// A low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Pseudo-random generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (Blackman & Vigna).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from the generator's raw stream
/// (the `Standard` distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform sampling of one integer below `bound` without modulo bias
/// (Lemire's multiply-shift rejection method).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let low = m as u64;
        if low >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
        // Rejected sample in the biased zone; redraw.
    }
}

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

sample_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty inclusive range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-sampleable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// The crate-level prelude of the real `rand`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5u32..=6);
            assert!((5..=6).contains(&y));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn shuffle_permutes() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }
}
