//! Offline stand-in for the `rayon` crate.
//!
//! Implements the data-parallel API subset the workspace uses —
//! `par_iter()` / `into_par_iter()` followed by `.map(...).collect()` —
//! with genuine parallelism: items are split into order-preserving chunks
//! (about four per available core, so uneven per-item cost still load
//! balances reasonably) executed on `std::thread::scope` threads. There is
//! no work stealing and no persistent pool; for the coarse-grained batch
//! workloads in this workspace the spawn cost is negligible relative to
//! chunk runtime.

use std::ops::Range;

/// Rayon's catch-all import surface.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap};
}

/// Values convertible into a parallel iterator by consuming them.
pub trait IntoParallelIterator: Sized {
    /// Item yielded to the parallel closures.
    type Item: Send;

    /// Converts into the parallel pipeline entry point.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for Range<u32> {
    type Item = u32;

    fn into_par_iter(self) -> ParIter<u32> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Values whose references iterate in parallel (`par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Item yielded to the parallel closures.
    type Item: Send + 'a;

    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The parallel pipeline entry point: a materialized item list.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel, discarding results.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        parallel_map(self.items, f);
    }
}

/// A mapped parallel pipeline, ready to collect.
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, U: Send, F: Fn(T) -> U + Sync> ParMap<T, F> {
    /// Executes the pipeline and gathers results in input order.
    pub fn collect<C: FromIterator<U>>(self) -> C {
        parallel_map(self.items, self.f).into_iter().collect()
    }
}

fn parallel_map<T: Send, U: Send, F: Fn(T) -> U + Sync>(items: Vec<T>, f: F) -> Vec<U> {
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    // ~4 chunks per thread give static scheduling a margin against uneven
    // per-item cost while keeping spawn overhead trivial.
    let chunk = n.div_ceil(threads * 4);
    let mut chunks: Vec<Vec<T>> = Vec::new();
    let mut items = items;
    while !items.is_empty() {
        let tail = items.split_off(items.len().saturating_sub(chunk));
        chunks.push(tail);
    }
    chunks.reverse(); // restore input order: we split off the tail first

    let f = &f;
    let results: Vec<Vec<U>> = std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });
    results.into_iter().flatten().collect()
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("joined closure panicked"))
    })
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..10_000u64).collect();
        let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000u64).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_on_ranges() {
        let squares: Vec<usize> = (0..1000usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[31], 961);
        assert_eq!(squares.len(), 1000);
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = Vec::<u32>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u32> = vec![7u32].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".repeat(3));
        assert_eq!(a, 2);
        assert_eq!(b, "xxx");
    }
}
