//! Offline stand-in for the `serde` crate.
//!
//! The build container has no network access and an empty cargo registry,
//! so the real serde cannot be fetched. This crate provides the subset of
//! serde's API the workspace uses, built around a self-describing value
//! tree ([`Value`]) instead of serde's visitor architecture:
//!
//! * [`Serialize`] / [`Deserialize`] traits with blanket impls for the
//!   primitives, `String`, `Vec<T>`, `Option<T>`, arrays, and small tuples;
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   proc-macro crate (re-exported here, exactly like the real crate);
//! * `#[serde(transparent)]` and `#[serde(skip)]` attributes;
//! * [`de::DeserializeOwned`] as used by generic readers.
//!
//! The `derive` cargo feature is accepted (and ignored): derives are
//! always available.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing serialized value (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer outside `i64` range.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(f as i64),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            Value::UInt(u) => Some(u),
            Value::Float(f) if f.fract() == 0.0 && (0.0..1.9e19).contains(&f) => Some(f as u64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering, matching `serde_json::to_string`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::UInt(u) => write!(f, "{u}"),
            Value::Float(x) => {
                if !x.is_finite() {
                    f.write_str("null")
                } else if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        '\n' => f.write_str("\\n")?,
                        '\r' => f.write_str("\\r")?,
                        '\t' => f.write_str("\\t")?,
                        c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                        c => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", Value::Str(k.clone()))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Serialization error (unused by the value model, kept for API parity).
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization-side traits, mirroring `serde::de`.
pub mod de {
    pub use crate::Deserialize;

    /// Owned deserialization marker; every [`Deserialize`] type qualifies.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

/// Serialization-side re-exports, mirroring `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

/// Field lookup helper used by generated `Deserialize` impls.
#[doc(hidden)]
pub fn __field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(field) => T::from_value(field),
        None => Err(Error::msg(format!("missing field `{name}`"))),
    }
}

/// Array element helper used by generated tuple-struct `Deserialize` impls.
#[doc(hidden)]
pub fn __element<T: Deserialize>(v: &Value, idx: usize) -> Result<T, Error> {
    match v {
        Value::Array(items) => match items.get(idx) {
            Some(item) => T::from_value(item),
            None => Err(Error::msg(format!("missing tuple element {idx}"))),
        },
        _ => Err(Error::msg("expected array")),
    }
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::msg("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .and_then(|s| {
                let mut it = s.chars();
                match (it.next(), it.next()) {
                    (Some(c), None) => Some(c),
                    _ => None,
                }
            })
            .ok_or_else(|| Error::msg("expected single-char string"))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| Error::msg("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                Ok(($(__element::<$name>(v, $idx)?,)+))
            }
        }
    )+};
}

ser_de_tuple!(
    (A0: 0),
    (A0: 0, A1: 1),
    (A0: 0, A1: 1, A2: 2),
    (A0: 0, A1: 1, A2: 2, A3: 3)
);

/// Map keys that render as JSON object keys (strings), mirroring
/// serde_json's stringification of integer-keyed maps.
pub trait MapKey: Sized {
    /// The key as an object-field name.
    fn to_key_string(&self) -> String;

    /// Parses the key back from an object-field name.
    fn from_key_string(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key_string(&self) -> String {
        self.clone()
    }

    fn from_key_string(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! int_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key_string(&self) -> String {
                self.to_string()
            }

            fn from_key_string(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::msg(format!("invalid integer map key `{s}`")))
            }
        }
    )*};
}

int_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key_string(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key_string(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key_string(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_owned().to_value()).unwrap(),
            "hi"
        );
        assert!(bool::from_value(&true.to_value()).unwrap());
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let t = (1usize, 2.5f64);
        assert_eq!(<(usize, f64)>::from_value(&t.to_value()).unwrap(), t);
        let a = [1.0f64, 2.0, 3.0, 4.0];
        assert_eq!(<[f64; 4]>::from_value(&a.to_value()).unwrap(), a);
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()).unwrap(), None);
    }

    #[test]
    fn object_lookup() {
        let v = Value::Object(vec![("x".into(), Value::Int(1))]);
        assert_eq!(v.get("x"), Some(&Value::Int(1)));
        assert_eq!(v.get("y"), None);
    }
}
