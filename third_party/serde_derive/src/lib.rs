//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses, with no dependency on `syn` or
//! `quote` (neither is available offline): parsing walks the raw
//! [`proc_macro::TokenStream`] and code generation goes through string
//! templates parsed back into a token stream.
//!
//! Supported shapes:
//! * named-field structs (field-level `#[serde(skip)]` honoured:
//!   skipped on serialize, `Default::default()` on deserialize);
//! * tuple structs — single-field ("newtype") structs serialize
//!   transparently (matching serde's default and `#[serde(transparent)]`),
//!   wider tuples serialize as arrays;
//! * unit structs (serialize as `null`);
//! * enums with unit variants only (serialize as the variant name string).
//!
//! Generics and data-carrying enum variants are intentionally rejected
//! with a compile-time panic: nothing in the workspace needs them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Input {
    name: String,
    is_enum: bool,
    variants: Vec<String>,
    shape: Shape,
}

/// Derives the stand-in `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    let body = if input.is_enum {
        let arms: String = input
            .variants
            .iter()
            .map(|v| {
                format!(
                    "{n}::{v} => ::serde::Value::Str(\"{v}\".to_string()),",
                    n = input.name,
                    v = v
                )
            })
            .collect();
        format!("match *self {{ {arms} }}")
    } else {
        match &input.shape {
            Shape::Named(fields) => {
                let one = fields.iter().filter(|f| !f.skip).collect::<Vec<_>>();
                let pushes: String = one
                    .iter()
                    .map(|f| {
                        format!(
                            "fields.push((\"{0}\".to_string(), \
                             ::serde::Serialize::to_value(&self.{0})));",
                            f.name
                        )
                    })
                    .collect();
                format!(
                    "let mut fields: Vec<(String, ::serde::Value)> = Vec::new(); \
                     {pushes} ::serde::Value::Object(fields)"
                )
            }
            Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Shape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            }
            Shape::Unit => "::serde::Value::Null".to_string(),
        }
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{ \
             fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}",
        name = input.name
    );
    out.parse().expect("generated Serialize impl parses")
}

/// Derives the stand-in `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    let body = if input.is_enum {
        let arms: String = input
            .variants
            .iter()
            .map(|v| format!("\"{v}\" => Ok({n}::{v}),", n = input.name, v = v))
            .collect();
        format!(
            "match v {{ \
                 ::serde::Value::Str(s) => match s.as_str() {{ \
                     {arms} \
                     other => Err(::serde::Error::msg(format!( \
                         \"unknown variant `{{other}}`\"))), \
                 }}, \
                 _ => Err(::serde::Error::msg(\"expected string variant\")), \
             }}"
        )
    } else {
        match &input.shape {
            Shape::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        if f.skip {
                            format!("{}: ::core::default::Default::default()", f.name)
                        } else {
                            format!("{0}: ::serde::__field(v, \"{0}\")?", f.name)
                        }
                    })
                    .collect();
                format!("Ok(Self {{ {} }})", inits.join(", "))
            }
            Shape::Tuple(1) => "Ok(Self(::serde::Deserialize::from_value(v)?))".to_string(),
            Shape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::__element(v, {i})?"))
                    .collect();
                format!("Ok(Self({}))", items.join(", "))
            }
            Shape::Unit => "Ok(Self)".to_string(),
        }
    };
    let out = format!(
        "impl ::serde::Deserialize for {name} {{ \
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{ \
                 {body} \
             }} \
         }}",
        name = input.name
    );
    out.parse().expect("generated Deserialize impl parses")
}

/// True when an attribute group body (the tokens inside `#[...]`) is a
/// `serde(...)` list containing the word `word`.
fn serde_attr_contains(tokens: &[TokenTree], word: &str) -> bool {
    let mut it = tokens.iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(w) if w.to_string() == word))
        }
        _ => false,
    }
}

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (doc comments, #[serde(...)], #[repr(...)], …).
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if matches!(&tokens.get(i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive stand-in does not support generic types ({name})");
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
                name,
                is_enum: false,
                variants: Vec::new(),
                shape: Shape::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Input {
                name,
                is_enum: false,
                variants: Vec::new(),
                shape: Shape::Tuple(count_tuple_fields(g.stream())),
            },
            _ => Input {
                name,
                is_enum: false,
                variants: Vec::new(),
                shape: Shape::Unit,
            },
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
                name,
                is_enum: true,
                variants: parse_unit_variants(g.stream()),
                shape: Shape::Unit,
            },
            other => panic!("serde derive: malformed enum body: {other:?}"),
        },
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Field attributes.
        let mut skip = false;
        loop {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if serde_attr_contains(&inner, "skip") {
                            skip = true;
                        }
                    }
                    i += 2;
                }
                TokenTree::Ident(id) if id.to_string() == "pub" => {
                    i += 1;
                    if matches!(&tokens.get(i), Some(TokenTree::Group(g))
                        if g.delimiter() == Delimiter::Parenthesis)
                    {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name, found {other}"),
        };
        i += 1; // name
        i += 1; // ':'
                // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for t in stream {
        any = true;
        trailing_comma = false;
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_unit_variants(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                let v = id.to_string();
                i += 1;
                match tokens.get(i) {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
                    Some(other) => panic!(
                        "serde derive stand-in supports unit enum variants only; \
                         variant `{v}` is followed by {other}"
                    ),
                }
                variants.push(v);
            }
            other => panic!("serde derive: unexpected token in enum body: {other}"),
        }
    }
    variants
}
