//! Offline stand-in for the `serde_json` crate.
//!
//! JSON text encoding/decoding over the stand-in `serde` value tree:
//! [`to_string`] / [`to_string_pretty`] / [`to_writer`], [`from_str`] /
//! [`from_reader`], the [`json!`] macro, and [`Value`] (re-exported from
//! `serde`). The parser is a hand-written recursive-descent JSON reader
//! with full string-escape support; non-finite floats serialize as `null`,
//! matching the real crate.

pub use serde::Value;

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;
use std::io;

/// JSON encode/decode error.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

impl From<Error> for io::Error {
    fn from(e: Error) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes compact JSON into a writer.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::msg(e.to_string()))
}

/// Deserializes a value from JSON text.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse(text)?;
    Ok(T::from_value(&value)?)
}

/// Deserializes a value from a reader.
pub fn from_reader<R: io::Read, T: DeserializeOwned>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| Error::msg(e.to_string()))?;
    from_str(&text)
}

/// Builds a [`Value`] from JSON-ish syntax.
///
/// Supports object literals with string-literal keys, array literals whose
/// elements are single token trees (literals, identifiers, nested
/// objects/arrays), `null`, and arbitrary serializable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1.0e15 {
                    // Keep a trailing `.0` so the value re-parses as float-y
                    // yet stays readable.
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\x08' => out.push_str("\\b"),
            '\x0c' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::msg(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::msg(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\x08'),
                        Some(b'f') => out.push('\x0c'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            // Surrogate pairs are not reassembled; BMP only.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let arr = Value::Array(vec![
            Value::Bool(true),
            Value::Null,
            Value::Str("x\ny".into()),
        ]);
        let v = json!({"a": 1, "b": arr, "c": 1.5});
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = json!({"k": [1, 2]});
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\n  \"k\""));
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v: Value = from_str(r#"{"s": "a\"\\A", "n": -2.5e2, "i": 12}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "a\"\\A");
        assert_eq!(v.get("n").unwrap().as_f64().unwrap(), -250.0);
        assert_eq!(v.get("i").unwrap().as_i64().unwrap(), 12);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 tail").is_err());
    }
}
